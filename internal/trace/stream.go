package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Chunked binary trace format (version 2):
//
//	magic "WSPR" | version u8 = 2
//	app string | layer string | threads uvarint
//	zero or more blocks, each:
//	    tag u8 = 0x01
//	    count uvarint           events in this block (>= 1)
//	    payloadLen uvarint      encoded event bytes that follow
//	    payload                 count delta-encoded events
//	    crc u32 LE              IEEE CRC-32 of payload
//	trailer (required, ends the stream):
//	    tag u8 = 0x02
//	    vloads uvarint | vstores uvarint | total uvarint
//	    crc u32 LE              IEEE CRC-32 of the three varints above
//
// Events inside a block use the same per-event encoding as version 1
// (kind u8, tid uvarint, time delta varint, addr delta varint, size
// uvarint) but the time/addr delta state RESETS at each block boundary,
// so every block is independently decodable and checkable. Unlike
// version 1 there is no up-front event count: the writer emits events as
// they happen and the aggregate volatile counters ride in the trailer,
// which is what lets a live run stream into analysis without ever
// materializing the trace. Memory on both sides is O(block), not
// O(trace).

const (
	version2 = 2

	tagBlock   = 0x01
	tagTrailer = 0x02

	// DefaultBlockEvents is the number of events the Writer frames per
	// block: big enough to amortize the frame header and CRC, small
	// enough that a block (< ~150 KiB encoded) stays cache-friendly.
	DefaultBlockEvents = 4096

	// maxBlockEvents / maxBlockBytes bound what the Reader will trust
	// from a block header before decoding it. The Writer stays far under
	// both; a corrupt or adversarial frame that claims more must error
	// without a large allocation.
	maxBlockEvents = 1 << 17
	maxBlockBytes  = 1 << 23

	// minEventBytes is the smallest possible encoded event (one byte per
	// field); a block claiming more events than payloadLen/minEventBytes
	// is lying about its count.
	minEventBytes = 5

	// maxKind is the highest valid Kind byte; both codec versions reject
	// anything above it.
	maxKind = byte(KCrash)

	// maxThreads bounds the header thread count trusted from either codec
	// version, mirroring the string-length bound in readString. The count
	// is attacker-controlled input that downstream consumers use to size
	// per-thread state (analysis shard routing, dense per-TID tables), and
	// the raw uvarint cast to int would go negative for values >= 2^63 on
	// 64-bit platforms. Honest traces stay far below: the suite runs at
	// most 8 client threads and the sharded service a few thousand.
	maxThreads = 1 << 20
)

// Meta identifies the run a trace stream came from.
type Meta struct {
	App     string
	Layer   string
	Threads int
}

// EventSource is the streaming view of a trace: run metadata up front,
// events in recorded order, aggregate volatile counters once the stream
// is exhausted. It is the input of the sharded analysis pipeline
// (internal/epoch.AnalyzeStream) and of the streaming cache and HOPS
// replays; *Reader and *SliceSource implement it.
type EventSource interface {
	// Meta returns the stream's run metadata.
	Meta() Meta
	// Next returns the next event in recorded order, or io.EOF after the
	// last one. Any other error means the stream is corrupt or truncated.
	Next() (Event, error)
	// Volatile returns the aggregate DRAM load/store counters. The
	// values are complete only after Next has returned io.EOF.
	Volatile() (loads, stores uint64)
}

// ChunkSource is an optional EventSource extension for sources that can
// hand out events in batches, sparing consumers one interface call per
// event. NextChunk returns at least one event or an error (io.EOF at
// end). Ownership of the returned slice transfers to the caller: the
// source must never reuse or mutate it (consumers may share it across
// goroutines), and the caller must treat it as read-only. A consumer
// must use either Next or NextChunk, exclusively, for the life of the
// stream.
type ChunkSource interface {
	EventSource
	NextChunk() ([]Event, error)
}

// SliceSource adapts an in-memory Trace to the EventSource interface.
type SliceSource struct {
	tr *Trace
	i  int
}

// NewSliceSource returns an EventSource over tr's event slice.
func NewSliceSource(tr *Trace) *SliceSource { return &SliceSource{tr: tr} }

// Meta returns the trace's run metadata.
func (s *SliceSource) Meta() Meta {
	return Meta{App: s.tr.App, Layer: s.tr.Layer, Threads: s.tr.Threads}
}

// Next returns the next event, or io.EOF past the end.
func (s *SliceSource) Next() (Event, error) {
	if s.i >= len(s.tr.Events) {
		return Event{}, io.EOF
	}
	e := s.tr.Events[s.i]
	s.i++
	return e, nil
}

// NextChunk returns the remaining events as one shared subslice, then
// io.EOF. It implements ChunkSource without copying.
func (s *SliceSource) NextChunk() ([]Event, error) {
	if s.i >= len(s.tr.Events) {
		return nil, io.EOF
	}
	c := s.tr.Events[s.i:]
	s.i = len(s.tr.Events)
	return c, nil
}

// Volatile returns the trace's aggregate DRAM counters.
func (s *SliceSource) Volatile() (uint64, uint64) {
	return s.tr.VolatileLoads, s.tr.VolatileStores
}

// --- Writer --------------------------------------------------------------

// Writer encodes an event stream in the chunked v2 format. Events are
// buffered into framed blocks of DefaultBlockEvents and flushed as each
// block fills; Close writes the trailer. A Writer holds O(block) memory
// regardless of trace length.
type Writer struct {
	bw      *bufio.Writer
	payload []byte
	count   int
	total   uint64
	closed  bool

	prevTime, prevAddr uint64
}

// NewWriter writes the v2 stream header for m to w and returns a Writer
// ready to receive events.
func NewWriter(w io.Writer, m Meta) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version2); err != nil {
		return nil, err
	}
	writeString(bw, m.App)
	writeString(bw, m.Layer)
	writeUvarint(bw, uint64(m.Threads))
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Write appends one event to the stream, framing a block when the
// current one fills.
func (w *Writer) Write(e Event) error {
	if w.closed {
		return errors.New("trace: Write on closed Writer")
	}
	if byte(e.Kind) > maxKind {
		return fmt.Errorf("trace: invalid kind %d", e.Kind)
	}
	w.payload = append(w.payload, byte(e.Kind))
	w.payload = binary.AppendUvarint(w.payload, uint64(e.TID))
	w.payload = binary.AppendVarint(w.payload, int64(uint64(e.Time)-w.prevTime))
	w.payload = binary.AppendVarint(w.payload, int64(uint64(e.Addr)-w.prevAddr))
	w.payload = binary.AppendUvarint(w.payload, uint64(e.Size))
	w.prevTime = uint64(e.Time)
	w.prevAddr = uint64(e.Addr)
	w.count++
	w.total++
	if w.count >= DefaultBlockEvents {
		return w.flushBlock()
	}
	return nil
}

// flushBlock frames and writes the buffered events, if any.
func (w *Writer) flushBlock() error {
	if w.count == 0 {
		return nil
	}
	if err := w.bw.WriteByte(tagBlock); err != nil {
		return err
	}
	writeUvarint(w.bw, uint64(w.count))
	writeUvarint(w.bw, uint64(len(w.payload)))
	if _, err := w.bw.Write(w.payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.payload))
	if _, err := w.bw.Write(crc[:]); err != nil {
		return err
	}
	w.payload = w.payload[:0]
	w.count = 0
	// Deltas reset per block so each block is self-contained.
	w.prevTime, w.prevAddr = 0, 0
	return nil
}

// Close flushes the final block and writes the trailer carrying the
// aggregate volatile counters. The Writer is unusable afterwards.
func (w *Writer) Close(vloads, vstores uint64) error {
	if w.closed {
		return errors.New("trace: Close on closed Writer")
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	w.closed = true
	if err := w.bw.WriteByte(tagTrailer); err != nil {
		return err
	}
	var tb []byte
	tb = binary.AppendUvarint(tb, vloads)
	tb = binary.AppendUvarint(tb, vstores)
	tb = binary.AppendUvarint(tb, w.total)
	if _, err := w.bw.Write(tb); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(tb))
	if _, err := w.bw.Write(crc[:]); err != nil {
		return err
	}
	return w.bw.Flush()
}

// EncodeV2 writes t to w in the chunked v2 format.
func EncodeV2(w io.Writer, t *Trace) error {
	tw, err := NewWriter(w, Meta{App: t.App, Layer: t.Layer, Threads: t.Threads})
	if err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := tw.Write(e); err != nil {
			return err
		}
	}
	return tw.Close(t.VolatileLoads, t.VolatileStores)
}

// --- Reader --------------------------------------------------------------

// Reader decodes a trace stream event by event, holding O(block) memory.
// It reads both codec versions: the sequential v1 format and the framed
// v2 format (verifying every block CRC and the trailer).
type Reader struct {
	br   *bufio.Reader
	ver  byte
	meta Meta

	// v1: events remaining; volatile counters live in the header.
	remaining uint64

	// v2: decoded current block and reusable payload buffer.
	block   []Event
	pos     int
	payload []byte

	vloads, vstores uint64
	delivered       uint64
	done            bool
	err             error

	prevTime, prevAddr uint64
}

// NewReader parses the stream header from r (either codec version) and
// returns a Reader positioned at the first event.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic")
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != version && ver != version2 {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	rd := &Reader{br: br, ver: ver}
	if rd.meta.App, err = readString(br); err != nil {
		return nil, err
	}
	if rd.meta.Layer, err = readString(br); err != nil {
		return nil, err
	}
	threads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if threads > maxThreads {
		return nil, fmt.Errorf("trace: unreasonable thread count %d (max %d)", threads, maxThreads)
	}
	rd.meta.Threads = int(threads)
	if ver == version {
		if rd.vloads, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if rd.vstores, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if rd.remaining, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
	}
	return rd, nil
}

// Meta returns the stream's run metadata.
func (r *Reader) Meta() Meta { return r.meta }

// Version returns the codec version being read (1 or 2).
func (r *Reader) Version() int { return int(r.ver) }

// Volatile returns the aggregate DRAM counters. For v1 streams they are
// available immediately; for v2 they arrive in the trailer, so they are
// complete only after Next has returned io.EOF.
func (r *Reader) Volatile() (uint64, uint64) { return r.vloads, r.vstores }

// Next returns the next event, io.EOF at the end of a well-formed
// stream, or a descriptive error on corruption. Errors are sticky.
func (r *Reader) Next() (Event, error) {
	if r.err != nil {
		return Event{}, r.err
	}
	if r.done {
		return Event{}, io.EOF
	}
	var e Event
	var err error
	if r.ver == version {
		e, err = r.nextV1()
	} else {
		e, err = r.nextV2()
	}
	if err != nil {
		if err == io.EOF {
			r.done = true
		} else {
			r.err = err
		}
		return Event{}, err
	}
	r.delivered++
	return e, nil
}

func (r *Reader) nextV1() (Event, error) {
	if r.remaining == 0 {
		return Event{}, io.EOF
	}
	kind, err := r.br.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("trace: event %d: %w", r.delivered, noEOF(err))
	}
	if kind > maxKind {
		return Event{}, fmt.Errorf("trace: event %d: invalid kind %d", r.delivered, kind)
	}
	tid, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Event{}, noEOF(err)
	}
	dt, err := binary.ReadVarint(r.br)
	if err != nil {
		return Event{}, noEOF(err)
	}
	da, err := binary.ReadVarint(r.br)
	if err != nil {
		return Event{}, noEOF(err)
	}
	size, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Event{}, noEOF(err)
	}
	r.remaining--
	r.prevTime += uint64(dt)
	r.prevAddr += uint64(da)
	return Event{
		Kind: Kind(kind),
		TID:  int32(tid),
		Time: memTime(r.prevTime),
		Addr: memAddr(r.prevAddr),
		Size: uint32(size),
	}, nil
}

func (r *Reader) nextV2() (Event, error) {
	for r.pos >= len(r.block) {
		if err := r.readFrame(); err != nil {
			return Event{}, err
		}
		if r.done {
			return Event{}, io.EOF
		}
	}
	e := r.block[r.pos]
	r.pos++
	return e, nil
}

// readFrame reads one v2 frame: an event block (decoded into r.block) or
// the trailer (which completes the stream).
func (r *Reader) readFrame() error {
	tag, err := r.br.ReadByte()
	if err != nil {
		return fmt.Errorf("trace: reading frame tag: %w", noEOF(err))
	}
	switch tag {
	case tagBlock:
		return r.readBlock()
	case tagTrailer:
		return r.readTrailer()
	default:
		return fmt.Errorf("trace: unknown frame tag %#x", tag)
	}
}

func (r *Reader) readBlock() error {
	count, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: block count: %w", noEOF(err))
	}
	payloadLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: block length: %w", noEOF(err))
	}
	// The count and length are untrusted input: bound them before any
	// allocation, and cross-check them against each other — the smallest
	// event encodes to minEventBytes, so a count the payload cannot hold
	// is a lie, reported before reading the payload at all.
	if count == 0 {
		return errors.New("trace: empty block")
	}
	if count > maxBlockEvents {
		return fmt.Errorf("trace: block claims %d events (max %d)", count, maxBlockEvents)
	}
	if payloadLen > maxBlockBytes {
		return fmt.Errorf("trace: block claims %d payload bytes (max %d)", payloadLen, maxBlockBytes)
	}
	if count*minEventBytes > payloadLen {
		return fmt.Errorf("trace: block claims %d events in %d bytes", count, payloadLen)
	}
	if uint64(cap(r.payload)) < payloadLen {
		r.payload = make([]byte, payloadLen)
	}
	r.payload = r.payload[:payloadLen]
	if _, err := io.ReadFull(r.br, r.payload); err != nil {
		return fmt.Errorf("trace: block payload: %w", noEOF(err))
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r.br, crcb[:]); err != nil {
		return fmt.Errorf("trace: block crc: %w", noEOF(err))
	}
	if got, want := crc32.ChecksumIEEE(r.payload), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return fmt.Errorf("trace: block crc mismatch (%#x != %#x)", got, want)
	}

	if uint64(cap(r.block)) < count {
		r.block = make([]Event, count)
	}
	r.block = r.block[:count]
	r.pos = 0
	pos := 0
	var prevTime, prevAddr uint64 // deltas reset per block
	for i := uint64(0); i < count; i++ {
		if pos >= len(r.payload) {
			return fmt.Errorf("trace: block event %d: payload exhausted", i)
		}
		kind := r.payload[pos]
		pos++
		if kind > maxKind {
			return fmt.Errorf("trace: block event %d: invalid kind %d", i, kind)
		}
		tid, n := binary.Uvarint(r.payload[pos:])
		if n <= 0 {
			return fmt.Errorf("trace: block event %d: bad tid varint", i)
		}
		pos += n
		dt, n := binary.Varint(r.payload[pos:])
		if n <= 0 {
			return fmt.Errorf("trace: block event %d: bad time varint", i)
		}
		pos += n
		da, n := binary.Varint(r.payload[pos:])
		if n <= 0 {
			return fmt.Errorf("trace: block event %d: bad addr varint", i)
		}
		pos += n
		size, n := binary.Uvarint(r.payload[pos:])
		if n <= 0 {
			return fmt.Errorf("trace: block event %d: bad size varint", i)
		}
		pos += n
		prevTime += uint64(dt)
		prevAddr += uint64(da)
		r.block[i] = Event{
			Kind: Kind(kind),
			TID:  int32(tid),
			Time: memTime(prevTime),
			Addr: memAddr(prevAddr),
			Size: uint32(size),
		}
	}
	if pos != len(r.payload) {
		return fmt.Errorf("trace: block has %d trailing payload bytes", len(r.payload)-pos)
	}
	return nil
}

func (r *Reader) readTrailer() error {
	rec := recordingByteReader{br: r.br}
	vloads, err := binary.ReadUvarint(&rec)
	if err != nil {
		return fmt.Errorf("trace: trailer vloads: %w", noEOF(err))
	}
	vstores, err := binary.ReadUvarint(&rec)
	if err != nil {
		return fmt.Errorf("trace: trailer vstores: %w", noEOF(err))
	}
	total, err := binary.ReadUvarint(&rec)
	if err != nil {
		return fmt.Errorf("trace: trailer total: %w", noEOF(err))
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r.br, crcb[:]); err != nil {
		return fmt.Errorf("trace: trailer crc: %w", noEOF(err))
	}
	if got, want := crc32.ChecksumIEEE(rec.buf), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return fmt.Errorf("trace: trailer crc mismatch (%#x != %#x)", got, want)
	}
	if total != r.delivered {
		return fmt.Errorf("trace: trailer claims %d events, stream carried %d", total, r.delivered)
	}
	r.vloads, r.vstores = vloads, vstores
	r.done = true
	return nil
}

// recordingByteReader lets the trailer CRC cover varints without knowing
// their widths up front.
type recordingByteReader struct {
	br  *bufio.Reader
	buf []byte
}

func (r *recordingByteReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.buf = append(r.buf, b)
	}
	return b, err
}

// noEOF maps io.EOF to io.ErrUnexpectedEOF: inside an event, block or
// trailer a clean EOF still means the stream was cut short.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
