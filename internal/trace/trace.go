// Package trace records persistent-memory activity. It is the Go
// counterpart of the paper's PM_* macro instrumentation (Figure 2): every
// store, flush, fence and transaction boundary an application performs is
// appended to a Trace, stamped with the simulated global clock, and later
// consumed by the epoch analysis (internal/epoch), the cache simulation
// (internal/cachesim) and the HOPS timing replay (internal/hops).
package trace

import (
	"fmt"

	"github.com/whisper-pm/whisper/internal/mem"
)

// Kind discriminates trace events.
type Kind uint8

const (
	// KStore is a cacheable store to PM (PM_SET / PM_MEMCPY ...).
	KStore Kind = iota
	// KStoreNT is a non-temporal store to PM (PM_MOVNTI).
	KStoreNT
	// KLoad is a load from PM.
	KLoad
	// KFlush is a CLWB of one or more lines (PM_FLUSH).
	KFlush
	// KFence is an SFENCE (PM_FENCE); it ends the thread's current epoch.
	KFence
	// KTxBegin marks the start of a durable transaction.
	KTxBegin
	// KTxEnd marks the end (commit) of a durable transaction.
	KTxEnd
	// KVLoad is a volatile (DRAM) load; recorded only when the runtime is
	// configured to trace volatile traffic (Figure 6 studies).
	KVLoad
	// KVStore is a volatile (DRAM) store.
	KVStore
	// KUserData marks size bytes of the enclosing transaction's payload as
	// user data, as opposed to log/allocator/metadata bytes. The write
	// amplification analysis (§5.2) divides total PM bytes by user bytes.
	KUserData
	// KCrash marks a power failure. Every CPU cache empties and every
	// in-flight transaction is abandoned, so durability-state analyses
	// (pmsan) reset at this point; events after it are the recovery path.
	KCrash
)

var kindNames = [...]string{
	KStore: "store", KStoreNT: "store.nt", KLoad: "load", KFlush: "flush",
	KFence: "fence", KTxBegin: "tx.begin", KTxEnd: "tx.end",
	KVLoad: "vload", KVStore: "vstore", KUserData: "userdata",
	KCrash: "crash",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName maps a kind's String name ("store", "flush", "tx.end", ...)
// back to the Kind, so text front-ends (the litmus DSL in internal/pmodel)
// share one set of spellings with trace rendering.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one trace record. Addr/Size are meaningful for memory events;
// for KFence, KTxBegin and KTxEnd they are zero. For KUserData, Size holds
// the payload byte count.
type Event struct {
	Time mem.Time
	Addr mem.Addr
	Size uint32
	TID  int32
	Kind Kind
}

func (e Event) String() string {
	switch e.Kind {
	case KFence, KTxBegin, KTxEnd, KCrash:
		return fmt.Sprintf("%d t%d %s", e.Time, e.TID, e.Kind)
	default:
		return fmt.Sprintf("%d t%d %s %v+%d", e.Time, e.TID, e.Kind, e.Addr, e.Size)
	}
}

// IsPMWrite reports whether e writes persistent memory.
func (e Event) IsPMWrite() bool { return e.Kind == KStore || e.Kind == KStoreNT }

// Trace is an in-memory sequence of events plus run metadata.
type Trace struct {
	App     string // application name ("echo", "ycsb", ...)
	Layer   string // access layer ("native", "mnemosyne", "nvml", "pmfs")
	Threads int    // number of logical client threads

	Events []Event

	// VolatileLoads/VolatileStores aggregate DRAM traffic when per-event
	// volatile tracing is off (the common case; see persist.Config).
	VolatileLoads  uint64
	VolatileStores uint64
}

// Append adds an event.
func (t *Trace) Append(e Event) { t.Events = append(t.Events, e) }

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.Events) }

// Duration returns the simulated time spanned by the trace.
func (t *Trace) Duration() mem.Time {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Time - t.Events[0].Time
}

// CountKind returns the number of events of kind k.
func (t *Trace) CountKind(k Kind) int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// PMAccesses returns the number of PM loads+stores (cacheable and NTI).
func (t *Trace) PMAccesses() uint64 {
	var n uint64
	for _, e := range t.Events {
		switch e.Kind {
		case KStore, KStoreNT, KLoad:
			n++
		}
	}
	return n
}

// DRAMAccesses returns the number of volatile loads+stores, combining
// per-event records with the aggregate counters.
func (t *Trace) DRAMAccesses() uint64 {
	n := t.VolatileLoads + t.VolatileStores
	for _, e := range t.Events {
		switch e.Kind {
		case KVLoad, KVStore:
			n++
		}
	}
	return n
}

// ByThread splits events by thread ID, preserving order.
func (t *Trace) ByThread() map[int32][]Event {
	out := make(map[int32][]Event)
	for _, e := range t.Events {
		out[e.TID] = append(out[e.TID], e)
	}
	return out
}

// Filter returns the events satisfying keep, in order.
func (t *Trace) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range t.Events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}
