package trace

import (
	"bytes"
	"io"
	"testing"

	"github.com/whisper-pm/whisper/internal/mem"
)

// FuzzDecode throws arbitrary bytes at the trace decoder: it must accept or
// reject without panicking or over-allocating, and any accepted trace must
// survive an encode/decode round trip unchanged.
func FuzzDecode(f *testing.F) {
	seed := func(tr *Trace) {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(buf.Bytes())
	}
	seed(&Trace{App: "echo", Layer: "native", Threads: 1})
	seed(&Trace{
		App: "ycsb", Layer: "native", Threads: 2,
		VolatileLoads: 7, VolatileStores: 3,
		Events: []Event{
			{Time: 10, Addr: mem.PMBase, Size: 8, TID: 0, Kind: KStore},
			{Time: 12, Addr: mem.PMBase + 64, Size: 64, TID: 1, Kind: KFlush},
			{Time: 13, TID: 1, Kind: KFence},
		},
	})
	f.Add([]byte("WSPR"))
	f.Add([]byte{})
	f.Add([]byte("WSPR\x01\x04echo\x06native"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded trace failed: %v", err)
		}
		if tr2.App != tr.App || tr2.Layer != tr.Layer || tr2.Threads != tr.Threads ||
			tr2.VolatileLoads != tr.VolatileLoads || tr2.VolatileStores != tr.VolatileStores ||
			len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip changed trace header or event count")
		}
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}

// FuzzReaderV2 targets the chunked v2 block reader specifically: truncated
// blocks, corrupted CRCs, and lying block counts must error — never panic
// or allocate beyond the framing caps. The corpus is seeded with real
// encoded blocks (whole v2 streams plus hand-truncated and bit-flipped
// variants) so the fuzzer starts inside the format.
func FuzzReaderV2(f *testing.F) {
	seedTrace := &Trace{
		App: "ycsb", Layer: "native", Threads: 2,
		VolatileLoads: 7, VolatileStores: 3,
		Events: []Event{
			{Time: 10, Addr: mem.PMBase, Size: 8, TID: 0, Kind: KStore},
			{Time: 12, Addr: mem.PMBase + 64, Size: 64, TID: 1, Kind: KFlush},
			{Time: 13, TID: 1, Kind: KFence},
			{Time: 14, TID: 0, Kind: KTxEnd},
		},
	}
	var buf bytes.Buffer
	if err := EncodeV2(&buf, seedTrace); err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	whole := buf.Bytes()
	f.Add(append([]byte(nil), whole...))
	// Real encoded blocks, truncated at several offsets inside the frames.
	for _, cut := range []int{len(whole) - 1, len(whole) - 5, len(whole) / 2, 20} {
		if cut > 0 && cut < len(whole) {
			f.Add(append([]byte(nil), whole[:cut]...))
		}
	}
	// Bit flips in the block payload and in the CRC region.
	for _, off := range []int{20, len(whole) / 2, len(whole) - 2} {
		flipped := append([]byte(nil), whole...)
		flipped[off] ^= 0x10
		f.Add(flipped)
	}
	// A multi-block stream so the fuzzer sees inter-block delta resets.
	big := &Trace{App: "b", Layer: "native", Threads: 1}
	for i := 0; i < DefaultBlockEvents+10; i++ {
		big.Append(Event{Kind: KStore, Time: mem.Time(i), Addr: mem.PMBase + mem.Addr(i*8), Size: 8})
	}
	buf.Reset()
	if err := EncodeV2(&buf, big); err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))
	f.Add([]byte("WSPR\x02\x04echo\x06native\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var n int
		for {
			_, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Errors must be sticky: a second Next never resumes.
				if _, err2 := rd.Next(); err2 == nil || err2 == io.EOF {
					t.Fatalf("reader resumed after error %v", err)
				}
				return
			}
			n++
			if n > maxBlockEvents*64 {
				t.Fatalf("reader produced an implausible number of events from %d input bytes", len(data))
			}
		}
		if rd.Version() != version2 {
			return
		}
		// Fully accepted v2 stream: must re-encode and decode identically.
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("Decode failed on stream Reader accepted: %v", err)
		}
		buf := &bytes.Buffer{}
		if err := EncodeV2(buf, tr); err != nil {
			t.Fatalf("re-encode of accepted v2 trace failed: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded v2 trace failed: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) {
			t.Fatalf("v2 round trip changed event count")
		}
	})
}
