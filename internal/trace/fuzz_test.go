package trace

import (
	"bytes"
	"testing"

	"github.com/whisper-pm/whisper/internal/mem"
)

// FuzzDecode throws arbitrary bytes at the trace decoder: it must accept or
// reject without panicking or over-allocating, and any accepted trace must
// survive an encode/decode round trip unchanged.
func FuzzDecode(f *testing.F) {
	seed := func(tr *Trace) {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(buf.Bytes())
	}
	seed(&Trace{App: "echo", Layer: "native", Threads: 1})
	seed(&Trace{
		App: "ycsb", Layer: "native", Threads: 2,
		VolatileLoads: 7, VolatileStores: 3,
		Events: []Event{
			{Time: 10, Addr: mem.PMBase, Size: 8, TID: 0, Kind: KStore},
			{Time: 12, Addr: mem.PMBase + 64, Size: 64, TID: 1, Kind: KFlush},
			{Time: 13, TID: 1, Kind: KFence},
		},
	})
	f.Add([]byte("WSPR"))
	f.Add([]byte{})
	f.Add([]byte("WSPR\x01\x04echo\x06native"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded trace failed: %v", err)
		}
		if tr2.App != tr.App || tr2.Layer != tr.Layer || tr2.Threads != tr.Threads ||
			tr2.VolatileLoads != tr.VolatileLoads || tr2.VolatileStores != tr.VolatileStores ||
			len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip changed trace header or event count")
		}
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}
