package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

// Binary trace format:
//
//	magic "WSPR" | version u8
//	app string | layer string | threads uvarint
//	vloads uvarint | vstores uvarint
//	count uvarint
//	count * event
//
// Events are delta-encoded: Time and Addr are stored as signed deltas from
// the previous event, which keeps realistic traces small (most consecutive
// events are close in both time and space). Strings are uvarint length +
// bytes.

const (
	magic   = "WSPR"
	version = 1

	// maxPreallocEvents bounds the event-slice capacity trusted from the
	// on-disk count before any event has actually been decoded (64 Ki
	// events ≈ 1.5 MiB).
	maxPreallocEvents = 1 << 16
)

// Encode writes t to w in the binary trace format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	writeString(bw, t.App)
	writeString(bw, t.Layer)
	writeUvarint(bw, uint64(t.Threads))
	writeUvarint(bw, t.VolatileLoads)
	writeUvarint(bw, t.VolatileStores)
	writeUvarint(bw, uint64(len(t.Events)))
	var prevTime, prevAddr uint64
	for _, e := range t.Events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		writeUvarint(bw, uint64(e.TID))
		writeVarint(bw, int64(uint64(e.Time)-prevTime))
		writeVarint(bw, int64(uint64(e.Addr)-prevAddr))
		writeUvarint(bw, uint64(e.Size))
		prevTime = uint64(e.Time)
		prevAddr = uint64(e.Addr)
	}
	return bw.Flush()
}

// Decode reads a trace in either binary format (the sequential v1 layout
// or the chunked v2 layout) from r and materializes it. The decoder is a
// thin loop over Reader, so both versions share one validation path:
// kind bytes outside the known range and truncated or corrupt input are
// rejected, never silently accepted.
func Decode(r io.Reader) (*Trace, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{App: rd.meta.App, Layer: rd.meta.Layer, Threads: rd.meta.Threads}
	// The v1 count is attacker-controlled input: a corrupt or truncated
	// file can claim 2^60 events and the first event read would only fail
	// after a multi-GiB allocation. Cap the pre-allocation and let append
	// grow the slice; honest traces larger than the cap pay a few
	// reallocations. (v2 carries no up-front count; rd.remaining is 0.)
	prealloc := rd.remaining
	if prealloc > maxPreallocEvents {
		prealloc = maxPreallocEvents
	}
	t.Events = make([]Event, 0, prealloc)
	for {
		e, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Events = append(t.Events, e)
	}
	t.VolatileLoads, t.VolatileStores = rd.Volatile()
	return t, nil
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", errors.New("trace: unreasonable string length")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}
