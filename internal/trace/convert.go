package trace

import "github.com/whisper-pm/whisper/internal/mem"

// memTime and memAddr exist so the codec can convert raw integers without
// importing mem at every call site.
func memTime(v uint64) mem.Time { return mem.Time(v) }
func memAddr(v uint64) mem.Addr { return mem.Addr(v) }
