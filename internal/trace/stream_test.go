package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math/rand"
	"strings"
	"testing"

	"github.com/whisper-pm/whisper/internal/mem"
)

// genTrace generates a random but valid trace: every Kind, extreme
// time/addr jumps in both directions, zero-size stores, negative TIDs.
func genTrace(rng *rand.Rand, n int) *Trace {
	apps := []string{"", "echo", "ycsb", "a-very-long-application-name"}
	tr := &Trace{
		App:            apps[rng.Intn(len(apps))],
		Layer:          []string{"native", "nvml", "mnemosyne", "pmfs"}[rng.Intn(4)],
		Threads:        rng.Intn(16),
		VolatileLoads:  rng.Uint64() >> uint(rng.Intn(64)),
		VolatileStores: rng.Uint64() >> uint(rng.Intn(64)),
	}
	for i := 0; i < n; i++ {
		e := Event{
			Kind: Kind(rng.Intn(int(KUserData) + 1)),
			TID:  int32(rng.Uint32()), // full range, including negatives
			Time: mem.Time(rng.Uint64() >> uint(rng.Intn(64))),
			Addr: mem.Addr(rng.Uint64() >> uint(rng.Intn(64))),
			Size: rng.Uint32() >> uint(rng.Intn(32)),
		}
		if rng.Intn(8) == 0 {
			e.Size = 0 // zero-size store
		}
		if rng.Intn(16) == 0 {
			e.Time = 1<<64 - 1 // forces a maximal backward delta next event
		}
		tr.Append(e)
	}
	return tr
}

func tracesEqual(t *testing.T, ctx string, want, got *Trace) {
	t.Helper()
	if got.App != want.App || got.Layer != want.Layer || got.Threads != want.Threads {
		t.Fatalf("%s: metadata mismatch: got %q/%q/%d want %q/%q/%d", ctx,
			got.App, got.Layer, got.Threads, want.App, want.Layer, want.Threads)
	}
	if got.VolatileLoads != want.VolatileLoads || got.VolatileStores != want.VolatileStores {
		t.Fatalf("%s: volatile counters mismatch: got %d/%d want %d/%d", ctx,
			got.VolatileLoads, got.VolatileStores, want.VolatileLoads, want.VolatileStores)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("%s: %d events, want %d", ctx, len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", ctx, i, got.Events[i], want.Events[i])
		}
	}
}

// readerMaterialize drains a Reader into a Trace, the way the streaming
// pipeline would.
func readerMaterialize(t *testing.T, r io.Reader) *Trace {
	t.Helper()
	rd, err := NewReader(r)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	m := rd.Meta()
	tr := &Trace{App: m.App, Layer: m.Layer, Threads: m.Threads}
	for {
		e, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		tr.Append(e)
	}
	tr.VolatileLoads, tr.VolatileStores = rd.Volatile()
	return tr
}

// TestPropertyRoundTrip is the codec property test: for random valid
// traces — all kinds, extreme deltas, zero-size stores, empty traces —
// Encode→Decode (v1), EncodeV2→Decode, and Writer→Reader must all
// reproduce the input exactly.
func TestPropertyRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 2, 17, 1000, DefaultBlockEvents, 2*DefaultBlockEvents + 37}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range sizes {
			orig := genTrace(rng, n)

			var v1 bytes.Buffer
			if err := Encode(&v1, orig); err != nil {
				t.Fatalf("seed %d n %d: Encode: %v", seed, n, err)
			}
			got, err := Decode(bytes.NewReader(v1.Bytes()))
			if err != nil {
				t.Fatalf("seed %d n %d: Decode v1: %v", seed, n, err)
			}
			tracesEqual(t, "v1 Encode/Decode", orig, got)

			var v2 bytes.Buffer
			if err := EncodeV2(&v2, orig); err != nil {
				t.Fatalf("seed %d n %d: EncodeV2: %v", seed, n, err)
			}
			got, err = Decode(bytes.NewReader(v2.Bytes()))
			if err != nil {
				t.Fatalf("seed %d n %d: Decode v2: %v", seed, n, err)
			}
			tracesEqual(t, "v2 EncodeV2/Decode", orig, got)

			// Writer→Reader, event by event, both versions.
			tracesEqual(t, "v1 Reader", orig, readerMaterialize(t, bytes.NewReader(v1.Bytes())))
			tracesEqual(t, "v2 Writer/Reader", orig, readerMaterialize(t, bytes.NewReader(v2.Bytes())))
		}
	}
}

func TestWriterStreamsIncrementally(t *testing.T) {
	// The writer must emit framed blocks as events arrive, not hold the
	// stream until Close: after DefaultBlockEvents+1 events at least one
	// full block (tag+frame+payload) must be on the wire.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{App: "x", Layer: "native", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	headerLen := buf.Len()
	for i := 0; i < DefaultBlockEvents+1; i++ {
		if err := w.Write(Event{Kind: KStore, Time: mem.Time(i), Addr: mem.PMBase, Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() <= headerLen+DefaultBlockEvents {
		t.Fatalf("no block flushed after %d events (%d bytes on wire)", DefaultBlockEvents+1, buf.Len())
	}
	if err := w.Close(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(0, 0); err == nil {
		t.Fatal("second Close accepted")
	}
	if err := w.Write(Event{}); err == nil {
		t.Fatal("Write after Close accepted")
	}
}

func TestWriterRejectsInvalidKind(t *testing.T) {
	w, err := NewWriter(&bytes.Buffer{}, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Kind: Kind(maxKind + 1)}); err == nil {
		t.Fatal("Writer accepted out-of-range kind")
	}
}

// --- Malformed-input tables ----------------------------------------------

// appendUvarint / appendVarint build raw frames for adversarial tests.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// v2Header returns a valid v2 stream header.
func v2Header() []byte {
	var b []byte
	b = append(b, magic...)
	b = append(b, version2)
	b = appendString(b, "a")
	b = appendString(b, "native")
	b = appendUvarint(b, 1)
	return b
}

// rawEvent encodes one event payload with explicit raw fields.
func rawEvent(kind byte, tid uint64, dt, da int64, size uint64) []byte {
	var b []byte
	b = append(b, kind)
	b = appendUvarint(b, tid)
	b = appendVarint(b, dt)
	b = appendVarint(b, da)
	b = appendUvarint(b, size)
	return b
}

// rawBlock frames a block with explicit count/len/crc so tests can lie.
func rawBlock(count, payloadLen uint64, payload []byte, crc uint32) []byte {
	var b []byte
	b = append(b, tagBlock)
	b = appendUvarint(b, count)
	b = appendUvarint(b, payloadLen)
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc)
	return b
}

// rawTrailer frames a trailer with explicit totals and crc.
func rawTrailer(vloads, vstores, total uint64, fixCRC bool, crc uint32) []byte {
	var b []byte
	b = append(b, tagTrailer)
	var tb []byte
	tb = appendUvarint(tb, vloads)
	tb = appendUvarint(tb, vstores)
	tb = appendUvarint(tb, total)
	b = append(b, tb...)
	if fixCRC {
		crc = crc32.ChecksumIEEE(tb)
	}
	return binary.LittleEndian.AppendUint32(b, crc)
}

func okBlock(events ...[]byte) []byte {
	var payload []byte
	for _, e := range events {
		payload = append(payload, e...)
	}
	return rawBlock(uint64(len(events)), uint64(len(payload)), payload, crc32.ChecksumIEEE(payload))
}

// TestV2RejectsMalformed is the table of adversarial v2 inputs: each must
// produce a descriptive error — never a panic, a silent acceptance, or a
// large allocation.
func TestV2RejectsMalformed(t *testing.T) {
	ev := rawEvent(byte(KStore), 0, 10, 1<<32, 8)
	good := okBlock(ev)

	cases := []struct {
		name    string
		stream  []byte
		wantErr string
	}{
		{
			name:    "missing trailer",
			stream:  append(v2Header(), good...),
			wantErr: "frame tag",
		},
		{
			name:    "unknown frame tag",
			stream:  append(v2Header(), 0x7f),
			wantErr: "unknown frame tag",
		},
		{
			name:    "empty block",
			stream:  append(v2Header(), rawBlock(0, 0, nil, 0)...),
			wantErr: "empty block",
		},
		{
			name:    "count beyond cap",
			stream:  append(v2Header(), rawBlock(maxBlockEvents+1, maxBlockBytes, nil, 0)...),
			wantErr: "claims",
		},
		{
			name:    "payload beyond cap",
			stream:  append(v2Header(), rawBlock(1, maxBlockBytes+1, nil, 0)...),
			wantErr: "claims",
		},
		{
			name:    "lying count vs payload",
			stream:  append(v2Header(), rawBlock(uint64(len(ev)/minEventBytes+2), uint64(len(ev)), ev, crc32.ChecksumIEEE(ev))...),
			wantErr: "claims",
		},
		{
			name: "corrupted payload crc",
			stream: func() []byte {
				b := append(v2Header(), rawBlock(1, uint64(len(ev)), ev, crc32.ChecksumIEEE(ev)^0xdeadbeef)...)
				return append(b, rawTrailer(0, 0, 1, true, 0)...)
			}(),
			wantErr: "crc mismatch",
		},
		{
			name: "flipped payload byte",
			stream: func() []byte {
				bad := append([]byte(nil), ev...)
				bad[0] ^= 0x40
				b := append(v2Header(), rawBlock(1, uint64(len(bad)), bad, crc32.ChecksumIEEE(ev))...)
				return append(b, rawTrailer(0, 0, 1, true, 0)...)
			}(),
			wantErr: "crc mismatch",
		},
		{
			name: "invalid kind in block",
			stream: func() []byte {
				bad := rawEvent(maxKind+1, 0, 0, 0, 0)
				return append(v2Header(), okBlock(bad)...)
			}(),
			wantErr: "invalid kind",
		},
		{
			name: "trailing payload bytes",
			stream: func() []byte {
				payload := append(append([]byte(nil), ev...), 0x00, 0x00, 0x00, 0x00, 0x00)
				return append(v2Header(), rawBlock(1, uint64(len(payload)), payload, crc32.ChecksumIEEE(payload))...)
			}(),
			wantErr: "trailing payload",
		},
		{
			name: "count larger than events in payload",
			stream: func() []byte {
				payload := append(append([]byte(nil), ev...), ev...)
				return append(v2Header(), rawBlock(3, uint64(len(payload)), payload, crc32.ChecksumIEEE(payload))...)
			}(),
			wantErr: "payload exhausted",
		},
		{
			name:    "truncated block payload",
			stream:  append(v2Header(), append([]byte{tagBlock, 1, 20}, ev...)...),
			wantErr: "block",
		},
		{
			name: "trailer count mismatch",
			stream: func() []byte {
				b := append(v2Header(), good...)
				return append(b, rawTrailer(0, 0, 99, true, 0)...)
			}(),
			wantErr: "trailer claims",
		},
		{
			name: "trailer crc mismatch",
			stream: func() []byte {
				b := append(v2Header(), good...)
				return append(b, rawTrailer(7, 8, 1, false, 0x12345678)...)
			}(),
			wantErr: "crc mismatch",
		},
		{
			name:    "truncated trailer",
			stream:  append(append(v2Header(), good...), tagTrailer, 0x80),
			wantErr: "trailer",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(tc.stream))
			if err == nil {
				t.Fatalf("malformed stream accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestV1RejectsInvalidKind covers the latent v1 bug this PR fixes:
// Decode used to accept any kind byte silently; now both codec versions
// validate it against the known range.
func TestV1RejectsInvalidKind(t *testing.T) {
	for _, kind := range []byte{maxKind + 1, 0x42, 0xff} {
		var b []byte
		b = append(b, magic...)
		b = append(b, version)
		b = appendString(b, "a")
		b = appendString(b, "native")
		b = appendUvarint(b, 1) // threads
		b = appendUvarint(b, 0) // vloads
		b = appendUvarint(b, 0) // vstores
		b = appendUvarint(b, 1) // count
		b = append(b, rawEvent(kind, 0, 1, 1, 8)...)
		_, err := Decode(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("v1 Decode accepted kind %d", kind)
		}
		if !strings.Contains(err.Error(), "invalid kind") {
			t.Fatalf("kind %d: error %q does not mention invalid kind", kind, err)
		}
	}
}

// TestReaderStickyError ensures a corrupt stream keeps failing rather
// than resynchronizing on garbage.
func TestReaderStickyError(t *testing.T) {
	stream := append(v2Header(), 0x7f)
	rd, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err == nil {
		t.Fatal("first Next succeeded on garbage")
	}
	if _, err := rd.Next(); err == nil || err == io.EOF {
		t.Fatalf("error not sticky: %v", err)
	}
}

// TestV1ReaderVolatileUpFront checks the version-skew contract: v1
// carries the volatile counters in the header, so a Reader exposes them
// before the stream is drained.
func TestV1ReaderVolatileUpFront(t *testing.T) {
	tr := &Trace{App: "v", Layer: "native", Threads: 1, VolatileLoads: 11, VolatileStores: 22}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Version() != 1 {
		t.Fatalf("Version = %d, want 1", rd.Version())
	}
	if vl, vs := rd.Volatile(); vl != 11 || vs != 22 {
		t.Fatalf("Volatile = %d/%d, want 11/22", vl, vs)
	}
}
