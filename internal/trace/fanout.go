package trace

import (
	"io"
	"sync"
)

// Fanout: one event stream, several independent consumers, one pass.
// A pump goroutine reads the source in chunks and broadcasts each chunk
// to every branch over a bounded channel, so a trace is decoded (or a
// benchmark executed) exactly once no matter how many analyses consume
// it — the epoch pipeline, the durability sanitizer, and the cache
// simulator can all ride the same tap instead of replaying the trace
// once each. Every branch sees the identical event sequence in order,
// which keeps each consumer's output byte-identical to what it would
// produce reading the source alone.

// fanoutChunkEvents is the pump's batch size for Next-only sources; a
// ChunkSource's own batches pass through whole.
const fanoutChunkEvents = 4096

// fanoutDepth bounds each branch's queue. The pump advances at the pace
// of the slowest branch, so total buffered memory is
// branches × depth × chunk.
const fanoutDepth = 4

// fanout is the shared pump state.
type fanout struct {
	src      EventSource
	branches []*Branch

	// Written by the pump strictly before it closes the branch channels;
	// read by consumers only after their channel is drained (the close is
	// the synchronization edge), matching the EventSource contract that
	// Volatile is complete only at io.EOF.
	err     error
	vloads  uint64
	vstores uint64
}

// Branch is one consumer's view of a fanned-out stream. It implements
// ChunkSource; chunks are shared read-only with the other branches, so a
// consumer must not mutate the slices NextChunk returns. A consumer that
// stops early must call Close to release the pump — io.EOF and stream
// errors close the branch automatically.
type Branch struct {
	f    *fanout
	ch   chan []Event
	stop chan struct{}
	once sync.Once

	cur []Event
	pos int
}

// Fanout starts a pump goroutine over src and returns n branches that
// each replay the full stream. The pump runs at the pace of the slowest
// branch (bounded buffering, no unbounded fan-out queue); a branch that
// is abandoned early must be Closed or the pump stalls forever.
func Fanout(src EventSource, n int) []*Branch {
	f := &fanout{src: src, branches: make([]*Branch, n)}
	for i := range f.branches {
		f.branches[i] = &Branch{
			f:    f,
			ch:   make(chan []Event, fanoutDepth),
			stop: make(chan struct{}),
		}
	}
	go f.pump()
	return f.branches
}

func (f *fanout) pump() {
	cs, chunked := f.src.(ChunkSource)
	for {
		var chunk []Event
		var err error
		if chunked {
			chunk, err = cs.NextChunk()
		} else {
			// Next-only source: fill a fresh buffer per chunk — every
			// branch retains a reference until it finishes the chunk, so
			// the buffer cannot be reused.
			chunk, err = f.fill()
		}
		if len(chunk) > 0 {
			for _, b := range f.branches {
				select {
				case b.ch <- chunk:
				case <-b.stop:
				}
			}
		}
		if err != nil {
			if err != io.EOF {
				f.err = err
			}
			f.vloads, f.vstores = f.src.Volatile()
			for _, b := range f.branches {
				close(b.ch)
			}
			return
		}
	}
}

// fill batches events from a Next-only source into a freshly allocated
// chunk. It returns any events read even when the stream ends or errors
// mid-chunk, so consumers observe the same prefix a direct reader would.
func (f *fanout) fill() ([]Event, error) {
	chunk := make([]Event, 0, fanoutChunkEvents)
	for len(chunk) < fanoutChunkEvents {
		e, err := f.src.Next()
		if err != nil {
			return chunk, err
		}
		chunk = append(chunk, e)
	}
	return chunk, nil
}

// Meta returns the source's run metadata.
func (b *Branch) Meta() Meta { return b.f.src.Meta() }

// Next returns the branch's next event, io.EOF at the end of a
// well-formed stream, or the source's error.
func (b *Branch) Next() (Event, error) {
	for b.pos >= len(b.cur) {
		chunk, ok := <-b.ch
		if !ok {
			if b.f.err != nil {
				return Event{}, b.f.err
			}
			return Event{}, io.EOF
		}
		b.cur, b.pos = chunk, 0
	}
	e := b.cur[b.pos]
	b.pos++
	return e, nil
}

// NextChunk returns the branch's next batch of events. The returned
// slice is shared with the other branches and must be treated as
// read-only.
func (b *Branch) NextChunk() ([]Event, error) {
	if b.pos < len(b.cur) {
		chunk := b.cur[b.pos:]
		b.pos = len(b.cur)
		return chunk, nil
	}
	chunk, ok := <-b.ch
	if !ok {
		if b.f.err != nil {
			return nil, b.f.err
		}
		return nil, io.EOF
	}
	b.cur, b.pos = chunk, len(chunk)
	return chunk, nil
}

// Volatile returns the source's aggregate DRAM counters; complete only
// after Next/NextChunk has returned io.EOF.
func (b *Branch) Volatile() (loads, stores uint64) { return b.f.vloads, b.f.vstores }

// Close releases the branch: the pump stops delivering to it and will
// not block on it again. Consumers that drain to io.EOF need not call
// it; consumers that may stop early must, or the pump (and the other
// branches) stall.
func (b *Branch) Close() {
	b.once.Do(func() { close(b.stop) })
	// Drain anything already queued so the pump's buffered sends are not
	// mistaken for progress by this branch's future reads.
	for {
		select {
		case _, ok := <-b.ch:
			if !ok {
				return
			}
		default:
			return
		}
	}
}
