// Package mem provides the basic memory vocabulary shared by every layer of
// the WHISPER reproduction: byte addresses, 64-byte cache-line arithmetic,
// the simulated global clock, and the latency configuration used by the
// timing models.
//
// All simulated components agree on a single flat physical address space.
// By convention (mirroring the paper's methodology, which reserves a range
// of physical memory as PM) addresses below PMBase are volatile DRAM and
// addresses at or above PMBase are persistent memory.
package mem

import (
	"fmt"
	"sort"
)

// LineSize is the cache-line granularity used throughout the paper: epochs
// are measured in unique 64 B lines, flushes operate on lines, and the
// persist buffers track lines.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// PMBase is the first persistent address. The paper's testbed reserves 4 GB
// of an 8 GB machine as PM; we mirror that split in the simulated address
// space.
const PMBase Addr = 1 << 32

// Addr is a simulated physical byte address.
type Addr uint64

// Line identifies a 64-byte cache line by its index (Addr >> LineShift).
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// LineAddr returns the first byte address of line l.
func LineAddr(l Line) Addr { return Addr(l) << LineShift }

// PageShift is log2(PageLines). Pages are the unit of the simulated
// device's two-level line table (internal/pmem): 64 lines of 64 bytes,
// i.e. one 4 KiB page of data per table leaf.
const PageShift = 6

// PageLines is the number of cache lines per page.
const PageLines = 1 << PageShift

// PageOf returns the page index containing line l.
func PageOf(l Line) uint64 { return uint64(l) >> PageShift }

// PageIndex returns l's slot within its page (0..PageLines-1).
func PageIndex(l Line) uint { return uint(l) & (PageLines - 1) }

// PageFirstLine returns the first line of page p.
func PageFirstLine(p uint64) Line { return Line(p << PageShift) }

// IsPM reports whether a falls in the persistent range.
func IsPM(a Addr) bool { return a >= PMBase }

// LineIsPM reports whether line l falls in the persistent range.
func LineIsPM(l Line) bool { return IsPM(LineAddr(l)) }

// LinesSpanned returns the number of distinct cache lines touched by a write
// of size bytes starting at a. Size zero spans no lines.
func LinesSpanned(a Addr, size int) int {
	if size <= 0 {
		return 0
	}
	first := LineOf(a)
	last := LineOf(a + Addr(size) - 1)
	return int(last-first) + 1
}

// Lines returns every distinct line touched by [a, a+size).
func Lines(a Addr, size int) []Line {
	n := LinesSpanned(a, size)
	out := make([]Line, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, LineOf(a)+Line(i))
	}
	return out
}

// Span is a byte range [Addr, Addr+Size). Zero and negative sizes span
// nothing.
type Span struct {
	Addr Addr
	Size int
}

// Coalesce returns line-aligned spans covering exactly the distinct
// cache lines touched by spans, merged into maximal contiguous runs and
// sorted by address. Transaction layers use it to issue commit-time
// flushes once per dirty line: per-write dirty ranges routinely overlap
// within a line (e.g. two fields of one inode), and flushing them
// verbatim re-flushes lines that are already clean.
func Coalesce(spans []Span) []Span {
	lines := make([]Line, 0, len(spans))
	for _, s := range spans {
		n := LinesSpanned(s.Addr, s.Size)
		first := LineOf(s.Addr)
		for i := 0; i < n; i++ {
			lines = append(lines, first+Line(i))
		}
	}
	if len(lines) == 0 {
		return nil
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	out := make([]Span, 0, len(lines))
	for _, l := range lines {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			end := prev.Addr + Addr(prev.Size)
			if LineAddr(l) < end { // duplicate line
				continue
			}
			if LineAddr(l) == end { // contiguous: extend the run
				prev.Size += LineSize
				continue
			}
		}
		out = append(out, Span{Addr: LineAddr(l), Size: LineSize})
	}
	return out
}

func (a Addr) String() string {
	region := "dram"
	if IsPM(a) {
		region = "pm"
	}
	return fmt.Sprintf("0x%x(%s)", uint64(a), region)
}

// Cycles counts simulated processor cycles.
type Cycles uint64

// Time counts simulated nanoseconds since the start of the run. The paper's
// dependency analysis uses a 50 µs window measured on a global clock; the
// simulated clock plays that role here.
type Time uint64

const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Latency describes the timing configuration of the simulated machine. The
// defaults follow Table 3 of the paper: a 2 GHz core, DRAM 40 cycles, PM 160
// cycles for both reads and writes.
type Latency struct {
	CPUGHz      float64 // core frequency, cycles per nanosecond
	DRAMCycles  Cycles  // DRAM read/write latency
	PMCycles    Cycles  // PM read/write latency
	L1Cycles    Cycles  // L1 hit latency
	L2Cycles    Cycles  // L2/LLC hit latency
	MCQueue     Cycles  // memory-controller queue acceptance latency (PWQ durability point)
	StoreCycles Cycles  // nominal cost of an ordinary store that hits cache
}

// DefaultLatency mirrors the gem5 configuration in Table 3 of the paper.
func DefaultLatency() Latency {
	return Latency{
		CPUGHz:      2.0,
		DRAMCycles:  40,
		PMCycles:    160,
		L1Cycles:    4,
		L2Cycles:    12,
		MCQueue:     80,
		StoreCycles: 1,
	}
}

// ToTime converts cycles to simulated nanoseconds under l.
func (l Latency) ToTime(c Cycles) Time {
	if l.CPUGHz <= 0 {
		return Time(c)
	}
	return Time(float64(c) / l.CPUGHz)
}

// ToCycles converts simulated nanoseconds to cycles under l.
func (l Latency) ToCycles(t Time) Cycles {
	if l.CPUGHz <= 0 {
		return Cycles(t)
	}
	return Cycles(float64(t) * l.CPUGHz)
}

// Clock is the simulated global clock. Every traced event is stamped from a
// Clock; applications advance it as they execute simulated work. Clock is
// not safe for concurrent use: the deterministic scheduler serializes all
// access (see internal/sched).
type Clock struct {
	now Time
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d nanoseconds.
func (c *Clock) Advance(d Time) { c.now += d }

// AdvanceCycles moves the clock forward by cy cycles under lat.
func (c *Clock) AdvanceCycles(cy Cycles, lat Latency) { c.now += lat.ToTime(cy) }

// Set forces the clock to t. It is used by trace replay, which must revisit
// recorded timestamps, and must never move the clock backwards elsewhere.
func (c *Clock) Set(t Time) { c.now = t }
