package mem

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		a    Addr
		want Line
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{128, 2},
		{PMBase, Line(PMBase >> LineShift)},
	}
	for _, c := range cases {
		if got := LineOf(c.a); got != c.want {
			t.Errorf("LineOf(%v) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestLineAddrRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		l := LineOf(a)
		base := LineAddr(l)
		return base <= a && a < base+LineSize && LineOf(base) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPM(t *testing.T) {
	if IsPM(PMBase - 1) {
		t.Error("address below PMBase classified as PM")
	}
	if !IsPM(PMBase) {
		t.Error("PMBase not classified as PM")
	}
	if !LineIsPM(LineOf(PMBase + 100)) {
		t.Error("PM line not classified as PM")
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		a    Addr
		size int
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{63, 1, 1},
		{10, 128, 3},
		{64, 64, 1},
	}
	for _, c := range cases {
		if got := LinesSpanned(c.a, c.size); got != c.want {
			t.Errorf("LinesSpanned(%d, %d) = %d, want %d", c.a, c.size, got, c.want)
		}
	}
}

func TestLinesSpannedMatchesLines(t *testing.T) {
	f := func(raw uint64, rawSize uint16) bool {
		a := Addr(raw % (1 << 40))
		size := int(rawSize % 4096)
		ls := Lines(a, size)
		if len(ls) != LinesSpanned(a, size) {
			return false
		}
		for i, l := range ls {
			if i > 0 && l != ls[i-1]+1 {
				return false // lines must be consecutive
			}
		}
		if size > 0 && ls[0] != LineOf(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.Advance(100)
	c.Advance(50)
	if c.Now() != 150 {
		t.Fatalf("clock = %d, want 150", c.Now())
	}
	lat := DefaultLatency() // 2 GHz: 2 cycles per ns
	c.AdvanceCycles(200, lat)
	if c.Now() != 250 {
		t.Fatalf("clock = %d, want 250 after 200 cycles at 2 GHz", c.Now())
	}
}

func TestLatencyConversions(t *testing.T) {
	lat := DefaultLatency()
	if got := lat.ToTime(2000); got != 1000 {
		t.Errorf("ToTime(2000 cyc) = %d ns, want 1000", got)
	}
	if got := lat.ToCycles(1000); got != 2000 {
		t.Errorf("ToCycles(1000 ns) = %d, want 2000", got)
	}
	// Zero frequency degrades to identity rather than dividing by zero.
	var zero Latency
	if got := zero.ToTime(42); got != 42 {
		t.Errorf("zero-latency ToTime = %d, want 42", got)
	}
}

func TestDefaultLatencyMatchesPaperTable3(t *testing.T) {
	lat := DefaultLatency()
	if lat.DRAMCycles != 40 {
		t.Errorf("DRAM latency = %d cycles, paper uses 40", lat.DRAMCycles)
	}
	if lat.PMCycles != 160 {
		t.Errorf("PM latency = %d cycles, paper uses 160", lat.PMCycles)
	}
	if lat.CPUGHz != 2.0 {
		t.Errorf("CPU frequency = %v GHz, paper uses 2", lat.CPUGHz)
	}
}
