package pmfs

import (
	"fmt"

	"github.com/whisper-pm/whisper/internal/mem"
	"github.com/whisper-pm/whisper/internal/persist"
)

// Fsck verifies the filesystem's structural invariants over the persistent
// image, the way a real fsck audits a disk after an unclean mount:
//
//   - the namespace is a tree: every directory is reachable from the root
//     exactly once, every dirent points at a live inode, names are
//     well-formed;
//   - block pointers are in range and no data block is referenced twice;
//   - the allocation bitmap matches reachability exactly: every referenced
//     block is marked allocated and every allocated block is referenced
//     (journaled metadata transactions make leaks a bug, not a trade-off);
//   - every non-free inode is reachable and carries nlink == 1 (this FS
//     never creates hard links);
//   - directory sizes are dirent-aligned and file sizes representable.
//
// It must be called after Recover on a crashed image; with the journal
// rolled back, any remaining violation is a crash-consistency bug.
func (fs *FS) Fsck(th *persist.Thread) error {
	refBlocks := make(map[uint32]uint32) // data block -> owning inode
	reachable := make(map[uint32]bool)

	reachable[rootIno] = true
	if err := fs.fsckInodeBlocks(th, rootIno, refBlocks); err != nil {
		return err
	}
	queue := []uint32{rootIno}
	for len(queue) > 0 {
		dir := queue[0]
		queue = queue[1:]
		ia := fs.inodeAddr(dir)
		if th.LoadU64(ia+offType) != typeDir {
			return fmt.Errorf("fsck: inode %d queued as directory but is not one", dir)
		}
		size := th.LoadU64(ia + offSize)
		if size%direntSize != 0 {
			return fmt.Errorf("fsck: directory %d size %d not dirent-aligned", dir, size)
		}
		for off := uint64(0); off < size; off += direntSize {
			ba, err := fs.blockForRead(th, dir, off)
			if err != nil {
				return fmt.Errorf("fsck: directory %d offset %d: %w", dir, off, err)
			}
			entry := ba + mem.Addr(off%BlockSize)
			ino := uint32(th.LoadU64(entry))
			if ino == 0 {
				continue // deleted slot
			}
			if ino < 1 || int(ino) >= fs.opts.Inodes {
				return fmt.Errorf("fsck: directory %d holds out-of-range inode %d", dir, ino)
			}
			raw := th.Load(entry+8, maxName+1)
			name := string(raw[:indexByte(raw, 0)])
			if name == "" {
				return fmt.Errorf("fsck: directory %d holds dirent with empty name (inode %d)", dir, ino)
			}
			if reachable[ino] {
				return fmt.Errorf("fsck: inode %d referenced twice (second parent %d)", ino, dir)
			}
			reachable[ino] = true
			switch th.LoadU64(fs.inodeAddr(ino) + offType) {
			case typeDir:
				queue = append(queue, ino)
			case typeFile:
			default:
				return fmt.Errorf("fsck: dirent %q in directory %d points at free inode %d", name, dir, ino)
			}
			if err := fs.fsckInodeBlocks(th, ino, refBlocks); err != nil {
				return err
			}
		}
	}

	for i := 1; i < fs.opts.Inodes; i++ {
		ino := uint32(i)
		typ := th.LoadU64(fs.inodeAddr(ino) + offType)
		if typ == typeFree {
			if reachable[ino] {
				return fmt.Errorf("fsck: reachable inode %d marked free", ino)
			}
			continue
		}
		if !reachable[ino] {
			return fmt.Errorf("fsck: allocated inode %d (type %d) unreachable from root", ino, typ)
		}
		if nlink := th.LoadU64(fs.inodeAddr(ino) + offNlink); nlink != 1 {
			return fmt.Errorf("fsck: inode %d has nlink %d, want 1", ino, nlink)
		}
	}

	for w := 0; w < fs.opts.Blocks/64; w++ {
		v := th.LoadU64(fs.bitmap + mem.Addr(w*8))
		for b := 0; b < 64; b++ {
			blk := uint32(w*64 + b)
			allocated := v&(1<<uint(b)) != 0
			_, referenced := refBlocks[blk]
			if allocated && !referenced {
				return fmt.Errorf("fsck: block %d allocated but unreferenced (leak)", blk)
			}
			if referenced && !allocated {
				return fmt.Errorf("fsck: block %d referenced by inode %d but marked free", blk, refBlocks[blk])
			}
		}
	}
	return nil
}

// fsckInodeBlocks validates ino's block pointers and records each data
// block (including the indirect block itself) in ref, failing on
// out-of-range pointers and double references.
func (fs *FS) fsckInodeBlocks(th *persist.Thread, ino uint32, ref map[uint32]uint32) error {
	ia := fs.inodeAddr(ino)
	if size := th.LoadU64(ia + offSize); size > MaxFileSize {
		return fmt.Errorf("fsck: inode %d size %d exceeds maximum", ino, size)
	}
	claim := func(ptr uint64) error {
		blk := uint32(ptr - 1)
		if int(blk) >= fs.opts.Blocks {
			return fmt.Errorf("fsck: inode %d holds out-of-range block %d", ino, blk)
		}
		if owner, dup := ref[blk]; dup {
			return fmt.Errorf("fsck: block %d referenced by both inode %d and inode %d", blk, owner, ino)
		}
		ref[blk] = ino
		return nil
	}
	for i := 0; i < numDirect; i++ {
		if ptr := th.LoadU64(ia + offDirect + mem.Addr(i*8)); ptr != 0 {
			if err := claim(ptr); err != nil {
				return err
			}
		}
	}
	if ind := th.LoadU64(ia + offIndir); ind != 0 {
		if err := claim(ind); err != nil {
			return err
		}
		indBlk := fs.blockAddr(uint32(ind - 1))
		for i := 0; i < ptrsPerBlk; i++ {
			if ptr := th.LoadU64(indBlk + mem.Addr(i*8)); ptr != 0 {
				if err := claim(ptr); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
