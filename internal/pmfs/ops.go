package pmfs

import (
	"github.com/whisper-pm/whisper/internal/mem"
	"github.com/whisper-pm/whisper/internal/persist"
)

// This file implements the system-call surface. Every call is bracketed in
// TxBegin/TxEnd so the epoch analysis treats system calls as transactions,
// and every call persists synchronously: metadata under the undo journal,
// user data via non-temporal stores + sfence (one epoch per 4 KB block).

// Info describes a file, as returned by Stat.
type Info struct {
	Ino   uint32
	IsDir bool
	Size  int64
	Nlink int
}

// Create makes an empty regular file. It fails if the file exists.
func (fs *FS) Create(th *persist.Thread, path string) error {
	th.TxBegin()
	defer th.TxEnd()
	dir, name, err := fs.resolveParent(th, path)
	if err != nil {
		return err
	}
	if _, err := fs.lookupEntry(th, dir, name); err == nil {
		return ErrExists
	}
	mt := fs.jrnl.begin(th)
	ino, err := fs.allocInode(th, mt, typeFile)
	if err != nil {
		mt.abort()
		return err
	}
	if err := fs.addDirent(th, mt, dir, name, ino); err != nil {
		mt.abort()
		fs.freeInodes = append(fs.freeInodes, ino)
		return err
	}
	mt.commit()
	return nil
}

// Mkdir makes an empty directory.
func (fs *FS) Mkdir(th *persist.Thread, path string) error {
	th.TxBegin()
	defer th.TxEnd()
	dir, name, err := fs.resolveParent(th, path)
	if err != nil {
		return err
	}
	if _, err := fs.lookupEntry(th, dir, name); err == nil {
		return ErrExists
	}
	mt := fs.jrnl.begin(th)
	ino, err := fs.allocInode(th, mt, typeDir)
	if err != nil {
		mt.abort()
		return err
	}
	if err := fs.addDirent(th, mt, dir, name, ino); err != nil {
		mt.abort()
		fs.freeInodes = append(fs.freeInodes, ino)
		return err
	}
	mt.commit()
	return nil
}

// WriteAt writes data at the byte offset off, extending the file as
// needed. User data is written with NTIs and fenced per 4 KB block; the
// inode update runs under the metadata journal.
func (fs *FS) WriteAt(th *persist.Thread, path string, off int64, data []byte) error {
	th.TxBegin()
	defer th.TxEnd()
	if off < 0 {
		return ErrBadOffset
	}
	ino, err := fs.lookup(th, path)
	if err != nil {
		return err
	}
	ia := fs.inodeAddr(ino)
	if th.LoadU64(ia+offType) != typeFile {
		return ErrIsDir
	}
	if off+int64(len(data)) > MaxFileSize {
		return ErrTooLarge
	}

	mt := fs.jrnl.begin(th)
	pos := uint64(off)
	rest := data
	for len(rest) > 0 {
		ba, err := fs.blockForWrite(th, mt, ino, pos)
		if err != nil {
			mt.abort()
			return err
		}
		inBlock := int(pos % BlockSize)
		n := BlockSize - inBlock
		if n > len(rest) {
			n = len(rest)
		}
		// User data: NTI + sfence, not journaled (PMFS design).
		th.StoreNT(ba+mem.Addr(inBlock), rest[:n])
		th.Fence()
		pos += uint64(n)
		rest = rest[n:]
	}
	th.UserData(len(data))

	if newSize := uint64(off) + uint64(len(data)); newSize > th.LoadU64(ia+offSize) {
		mt.writeU64(ia+offSize, newSize)
	}
	mt.writeU64(ia+offMtime, uint64(fs.rt.Clock.Now()))
	mt.commit()
	return nil
}

// Append writes data at the end of the file.
func (fs *FS) Append(th *persist.Thread, path string, data []byte) error {
	ino, err := fs.lookup(th, path)
	if err != nil {
		return err
	}
	size := th.LoadU64(fs.inodeAddr(ino) + offSize)
	return fs.WriteAt(th, path, int64(size), data)
}

// ReadAt reads up to size bytes at offset off. Reads past EOF are
// truncated.
func (fs *FS) ReadAt(th *persist.Thread, path string, off int64, size int) ([]byte, error) {
	th.TxBegin()
	defer th.TxEnd()
	if off < 0 {
		return nil, ErrBadOffset
	}
	ino, err := fs.lookup(th, path)
	if err != nil {
		return nil, err
	}
	ia := fs.inodeAddr(ino)
	if th.LoadU64(ia+offType) != typeFile {
		return nil, ErrIsDir
	}
	fileSize := int64(th.LoadU64(ia + offSize))
	if off >= fileSize {
		return nil, nil
	}
	if off+int64(size) > fileSize {
		size = int(fileSize - off)
	}
	out := make([]byte, 0, size)
	pos := uint64(off)
	for len(out) < size {
		ba, err := fs.blockForRead(th, ino, pos)
		if err != nil {
			return nil, err
		}
		inBlock := int(pos % BlockSize)
		n := BlockSize - inBlock
		if n > size-len(out) {
			n = size - len(out)
		}
		out = append(out, th.Load(ba+mem.Addr(inBlock), n)...)
		pos += uint64(n)
	}
	return out, nil
}

// Unlink removes a file (or an empty directory via Rmdir semantics when
// the target is a directory with no entries).
func (fs *FS) Unlink(th *persist.Thread, path string) error {
	th.TxBegin()
	defer th.TxEnd()
	dir, name, err := fs.resolveParent(th, path)
	if err != nil {
		return err
	}
	ino, err := fs.lookupEntry(th, dir, name)
	if err != nil {
		return err
	}
	ia := fs.inodeAddr(ino)
	if th.LoadU64(ia+offType) == typeDir {
		empty := true
		fs.scanDir(th, ino, func(mem.Addr, uint32, string) bool { empty = false; return false })
		if !empty {
			return ErrNotEmpty
		}
	}

	mt := fs.jrnl.begin(th)
	// Remove the directory entry.
	var entryAddr mem.Addr
	fs.scanDir(th, dir, func(e mem.Addr, i uint32, n string) bool {
		if n == name {
			entryAddr = e
			return false
		}
		return true
	})
	mt.writeU64(entryAddr, 0) // ino = 0 marks the slot deleted

	nlink := th.LoadU64(ia + offNlink)
	if nlink > 1 {
		mt.writeU64(ia+offNlink, nlink-1)
		mt.commit()
		return nil
	}
	// Last link: free data blocks, then the inode.
	fs.freeFileBlocks(th, mt, ino)
	mt.writeU64(ia+offNlink, 0)
	mt.writeU64(ia+offSize, 0)
	mt.writeU64(ia+offType, typeFree)
	mt.commit()
	fs.freeInodes = append(fs.freeInodes, ino)
	return nil
}

func (fs *FS) freeFileBlocks(th *persist.Thread, mt *mdTx, ino uint32) {
	ia := fs.inodeAddr(ino)
	for i := 0; i < numDirect; i++ {
		slot := ia + offDirect + mem.Addr(i*8)
		if ptr := th.LoadU64(slot); ptr != 0 {
			fs.freeBlock(th, mt, uint32(ptr-1))
			mt.writeU64(slot, 0)
		}
	}
	if ind := th.LoadU64(ia + offIndir); ind != 0 {
		indBlk := fs.blockAddr(uint32(ind - 1))
		for i := 0; i < ptrsPerBlk; i++ {
			slot := indBlk + mem.Addr(i*8)
			if ptr := th.LoadU64(slot); ptr != 0 {
				fs.freeBlock(th, mt, uint32(ptr-1))
				mt.writeU64(slot, 0)
			}
		}
		fs.freeBlock(th, mt, uint32(ind-1))
		mt.writeU64(ia+offIndir, 0)
	}
}

// Rename moves oldPath to newPath (replacing nothing; newPath must not
// exist).
func (fs *FS) Rename(th *persist.Thread, oldPath, newPath string) error {
	th.TxBegin()
	defer th.TxEnd()
	oldDir, oldName, err := fs.resolveParent(th, oldPath)
	if err != nil {
		return err
	}
	newDir, newName, err := fs.resolveParent(th, newPath)
	if err != nil {
		return err
	}
	ino, err := fs.lookupEntry(th, oldDir, oldName)
	if err != nil {
		return err
	}
	if _, err := fs.lookupEntry(th, newDir, newName); err == nil {
		return ErrExists
	}
	mt := fs.jrnl.begin(th)
	if err := fs.addDirent(th, mt, newDir, newName, ino); err != nil {
		mt.abort()
		return err
	}
	var entryAddr mem.Addr
	fs.scanDir(th, oldDir, func(e mem.Addr, i uint32, n string) bool {
		if n == oldName && i == ino {
			entryAddr = e
			return false
		}
		return true
	})
	mt.writeU64(entryAddr, 0)
	mt.commit()
	return nil
}

// Stat returns metadata about path.
func (fs *FS) Stat(th *persist.Thread, path string) (Info, error) {
	th.TxBegin()
	defer th.TxEnd()
	ino, err := fs.lookup(th, path)
	if err != nil {
		return Info{}, err
	}
	ia := fs.inodeAddr(ino)
	return Info{
		Ino:   ino,
		IsDir: th.LoadU64(ia+offType) == typeDir,
		Size:  int64(th.LoadU64(ia + offSize)),
		Nlink: int(th.LoadU64(ia + offNlink)),
	}, nil
}

// Readdir lists the names in a directory.
func (fs *FS) Readdir(th *persist.Thread, path string) ([]string, error) {
	th.TxBegin()
	defer th.TxEnd()
	ino := uint32(rootIno)
	if p := trimmed(path); p != "" {
		var err error
		ino, err = fs.lookup(th, path)
		if err != nil {
			return nil, err
		}
	}
	var names []string
	err := fs.scanDir(th, ino, func(_ mem.Addr, _ uint32, n string) bool {
		names = append(names, n)
		return true
	})
	return names, err
}

// Fsync is a no-op: PMFS persists synchronously. It still brackets a
// transaction so traces show the call.
func (fs *FS) Fsync(th *persist.Thread, path string) error {
	th.TxBegin()
	defer th.TxEnd()
	_, err := fs.lookup(th, path)
	return err
}

// --- internals -----------------------------------------------------------

func trimmed(p string) string {
	for len(p) > 0 && p[0] == '/' {
		p = p[1:]
	}
	for len(p) > 0 && p[len(p)-1] == '/' {
		p = p[:len(p)-1]
	}
	return p
}

// resolveParent returns the inode of path's parent directory and the final
// name component.
func (fs *FS) resolveParent(th *persist.Thread, path string) (uint32, string, error) {
	components, name, err := splitPath(path)
	if err != nil {
		return 0, "", err
	}
	dir, err := fs.lookupDir(th, components)
	if err != nil {
		return 0, "", err
	}
	return dir, name, nil
}

// lookup resolves a full path to an inode number.
func (fs *FS) lookup(th *persist.Thread, path string) (uint32, error) {
	dir, name, err := fs.resolveParent(th, path)
	if err != nil {
		return 0, err
	}
	return fs.lookupEntry(th, dir, name)
}

// addDirent inserts (name, ino) into directory dir, reusing a deleted slot
// or extending the directory.
func (fs *FS) addDirent(th *persist.Thread, mt *mdTx, dir uint32, name string, ino uint32) error {
	ia := fs.inodeAddr(dir)
	size := th.LoadU64(ia + offSize)
	// Reuse a deleted slot if one exists.
	var slot mem.Addr
	for off := uint64(0); off < size; off += direntSize {
		ba, err := fs.blockForRead(th, dir, off)
		if err != nil {
			return err
		}
		entry := ba + mem.Addr(off%BlockSize)
		if th.LoadU64(entry) == 0 {
			slot = entry
			break
		}
	}
	if slot == 0 {
		ba, err := fs.blockForWrite(th, mt, dir, size)
		if err != nil {
			return err
		}
		slot = ba + mem.Addr(size%BlockSize)
		mt.writeU64(ia+offSize, size+direntSize)
	}
	// One contiguous journaled write covers ino and the NUL-terminated
	// name (slot reuse may leave stale bytes past the NUL; lookups stop at
	// the NUL, so they are harmless). The journal makes the entry atomic.
	buf := make([]byte, 8+len(name)+1)
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(ino) >> (8 * i))
	}
	copy(buf[8:], name)
	mt.write(slot, buf)
	return nil
}
