package pmfs

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"github.com/whisper-pm/whisper/internal/persist"
	"github.com/whisper-pm/whisper/internal/pmem"
	"github.com/whisper-pm/whisper/internal/pmsan"
	"github.com/whisper-pm/whisper/internal/trace"
)

func newFS(t *testing.T) (*persist.Runtime, *persist.Thread, *FS) {
	t.Helper()
	rt := persist.NewRuntime("pmfs-test", "pmfs", 1, persist.Config{})
	th := rt.Thread(0)
	return rt, th, Format(rt, th, Options{Inodes: 256, Blocks: 512})
}

func TestCreateStatUnlink(t *testing.T) {
	_, th, fs := newFS(t)
	if err := fs.Create(th, "/a.txt"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat(th, "/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir || info.Size != 0 || info.Nlink != 1 {
		t.Fatalf("info = %+v", info)
	}
	if err := fs.Create(th, "/a.txt"); !errors.Is(err, ErrExists) {
		t.Fatalf("second create = %v, want ErrExists", err)
	}
	if err := fs.Unlink(th, "/a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(th, "/a.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat after unlink = %v, want ErrNotFound", err)
	}
}

func TestWriteRead(t *testing.T) {
	_, th, fs := newFS(t)
	fs.Create(th, "/f")
	msg := []byte("hello persistent filesystem")
	if err := fs.WriteAt(th, "/f", 0, msg); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt(th, "/f", 0, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read = %q", got)
	}
	info, _ := fs.Stat(th, "/f")
	if info.Size != int64(len(msg)) {
		t.Fatalf("size = %d", info.Size)
	}
}

func TestWriteAcrossBlocks(t *testing.T) {
	_, th, fs := newFS(t)
	fs.Create(th, "/big")
	data := make([]byte, 3*BlockSize+123)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := fs.WriteAt(th, "/big", 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt(th, "/big", 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block round trip mismatch")
	}
	// Partial read in the middle, crossing a block boundary.
	got, err = fs.ReadAt(th, "/big", BlockSize-10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[BlockSize-10:BlockSize+10]) {
		t.Fatal("boundary read mismatch")
	}
}

func TestIndirectBlocks(t *testing.T) {
	_, th, fs := newFS(t)
	fs.Create(th, "/huge")
	// Write past the direct pointers.
	off := int64(numDirect * BlockSize)
	data := []byte("beyond the directs")
	if err := fs.WriteAt(th, "/huge", off, data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt(th, "/huge", off, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("indirect read = %q", got)
	}
}

func TestAppend(t *testing.T) {
	_, th, fs := newFS(t)
	fs.Create(th, "/log")
	for i := 0; i < 5; i++ {
		if err := fs.Append(th, "/log", []byte(fmt.Sprintf("line%d\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := fs.ReadAt(th, "/log", 0, 1000)
	want := "line0\nline1\nline2\nline3\nline4\n"
	if string(got) != want {
		t.Fatalf("log = %q", got)
	}
}

func TestMkdirNesting(t *testing.T) {
	_, th, fs := newFS(t)
	if err := fs.Mkdir(th, "/d1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(th, "/d1/d2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(th, "/d1/d2/f"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat(th, "/d1/d2/f")
	if err != nil || info.IsDir {
		t.Fatalf("stat nested = %+v, %v", info, err)
	}
	if err := fs.Create(th, "/nope/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("create in missing dir = %v", err)
	}
	if err := fs.Unlink(th, "/d1"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("unlink non-empty dir = %v", err)
	}
}

func TestReaddir(t *testing.T) {
	_, th, fs := newFS(t)
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		fs.Create(th, "/"+n)
	}
	fs.Unlink(th, "/b")
	got, err := fs.Readdir(th, "/")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := []string{"a", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("readdir = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("readdir = %v", got)
		}
	}
}

func TestDirentSlotReuse(t *testing.T) {
	_, th, fs := newFS(t)
	fs.Create(th, "/x")
	info1, _ := fs.Stat(th, "/")
	fs.Unlink(th, "/x")
	fs.Create(th, "/y") // must reuse the deleted slot
	info2, _ := fs.Stat(th, "/")
	if info2.Size != info1.Size {
		t.Fatalf("directory grew (%d -> %d) despite free slot", info1.Size, info2.Size)
	}
}

func TestRename(t *testing.T) {
	_, th, fs := newFS(t)
	fs.Mkdir(th, "/dir")
	fs.Create(th, "/old")
	fs.WriteAt(th, "/old", 0, []byte("content"))
	if err := fs.Rename(th, "/old", "/dir/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(th, "/old"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old name still present")
	}
	got, err := fs.ReadAt(th, "/dir/new", 0, 7)
	if err != nil || !bytes.Equal(got, []byte("content")) {
		t.Fatalf("renamed content = %q, %v", got, err)
	}
}

func TestUnlinkFreesBlocks(t *testing.T) {
	_, th, fs := newFS(t)
	fs.Create(th, "/f") // the root directory grabs its dirent block here
	free0 := len(fs.freeBlocks)
	fs.WriteAt(th, "/f", 0, make([]byte, 5*BlockSize))
	if len(fs.freeBlocks) >= free0 {
		t.Fatal("write did not consume blocks")
	}
	fs.Unlink(th, "/f")
	if len(fs.freeBlocks) != free0 {
		t.Fatalf("blocks leaked: %d -> %d", free0, len(fs.freeBlocks))
	}
}

func TestUserDataUsesNTI(t *testing.T) {
	// §5.2: about 96% of PMFS writes use NTIs.
	rt, th, fs := newFS(t)
	fs.Create(th, "/f")
	rt.Trace.Events = rt.Trace.Events[:0]
	fs.WriteAt(th, "/f", 0, make([]byte, BlockSize))
	var ntBytes, storeBytes uint64
	for _, e := range rt.Trace.Events {
		switch e.Kind {
		case trace.KStoreNT:
			ntBytes += uint64(e.Size)
		case trace.KStore:
			storeBytes += uint64(e.Size)
		}
	}
	frac := float64(ntBytes) / float64(ntBytes+storeBytes)
	if frac < 0.85 {
		t.Errorf("NTI byte fraction = %.2f, want > 0.85 for block writes", frac)
	}
}

func TestBlockWriteIs64LineEpoch(t *testing.T) {
	// Figure 4: PMFS epochs of 64 cache lines come from 4 KB block writes.
	rt, th, fs := newFS(t)
	fs.Create(th, "/f")
	rt.Trace.Events = rt.Trace.Events[:0]
	fs.WriteAt(th, "/f", 0, make([]byte, BlockSize))
	// Find the NT store of the user data and check it spans 64 lines.
	found := false
	for _, e := range rt.Trace.Events {
		if e.Kind == trace.KStoreNT && e.Size == BlockSize {
			found = true
		}
	}
	if !found {
		t.Error("no 4 KB NT store found for a block write")
	}
}

func TestWriteAmplificationNearPaper(t *testing.T) {
	// §5.2: ~400 extra metadata/journal bytes per 4096-byte append (~10%).
	rt, th, fs := newFS(t)
	fs.Create(th, "/f")
	rt.Trace.Events = rt.Trace.Events[:0]
	dev0 := rt.Dev.Stats().BytesStored
	fs.Append(th, "/f", make([]byte, BlockSize))
	total := rt.Dev.Stats().BytesStored - dev0
	extra := float64(total-BlockSize) / float64(BlockSize)
	if extra < 0.02 || extra > 0.40 {
		t.Errorf("write amplification = %.2f, paper reports ~0.10", extra)
	}
}

func TestCrashDuringMetadataOpRecovers(t *testing.T) {
	// Crash with an uncommitted journal: recovery must roll back so the
	// filesystem remains consistent (file either exists fully or not).
	rt, th, fs := newFS(t)
	fs.Create(th, "/keep")
	fs.WriteAt(th, "/keep", 0, []byte("safe"))

	// Begin a metadata transaction by hand and crash before commit.
	mt := fs.jrnl.begin(th)
	ia := fs.inodeAddr(rootIno)
	oldSize := th.LoadU64(ia + offSize)
	mt.writeU64(ia+offSize, oldSize+direntSize) // half-made entry
	th.Flush(ia+offSize, 8)
	th.Fence() // adversary: the new size IS durable
	rt.Crash(pmem.Strict, 1)

	fs.Recover(th)
	if got := th.LoadU64(ia + offSize); got != oldSize {
		t.Fatalf("root size = %d after recovery, want %d (rolled back)", got, oldSize)
	}
	got, err := fs.ReadAt(th, "/keep", 0, 4)
	if err != nil || !bytes.Equal(got, []byte("safe")) {
		t.Fatalf("committed file damaged: %q, %v", got, err)
	}
}

func TestCrashQuickConsistency(t *testing.T) {
	// Property: create files, crash adversarially at a random moment
	// (simulated by crashing after a random number of completed ops), and
	// verify every committed file's metadata is intact after recovery.
	f := func(seed int64, nOps uint8) bool {
		rt := persist.NewRuntime("pmfs-test", "pmfs", 1, persist.Config{})
		th := rt.Thread(0)
		fs := Format(rt, th, Options{Inodes: 128, Blocks: 256})
		n := int(nOps%16) + 1
		for i := 0; i < n; i++ {
			if err := fs.Create(th, fmt.Sprintf("/f%d", i)); err != nil {
				return false
			}
			if err := fs.WriteAt(th, fmt.Sprintf("/f%d", i), 0, []byte{byte(i)}); err != nil {
				return false
			}
		}
		rt.Crash(pmem.Adversarial, seed)
		fs.Recover(th)
		for i := 0; i < n; i++ {
			got, err := fs.ReadAt(th, fmt.Sprintf("/f%d", i), 0, 1)
			if err != nil || len(got) != 1 || got[0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSyscallsAreTransactions(t *testing.T) {
	rt, th, fs := newFS(t)
	rt.Trace.Events = rt.Trace.Events[:0]
	fs.Create(th, "/t")
	fs.WriteAt(th, "/t", 0, []byte("x"))
	fs.Stat(th, "/t")
	begins := rt.Trace.CountKind(trace.KTxBegin)
	ends := rt.Trace.CountKind(trace.KTxEnd)
	if begins != 3 || ends != 3 {
		t.Fatalf("tx brackets = %d/%d, want 3/3", begins, ends)
	}
}

func TestLongNameRejected(t *testing.T) {
	_, th, fs := newFS(t)
	long := "/" + string(bytes.Repeat([]byte("n"), maxName+1))
	if err := fs.Create(th, long); !errors.Is(err, ErrNameLong) {
		t.Fatalf("err = %v, want ErrNameLong", err)
	}
}

func TestStatRootViaReaddir(t *testing.T) {
	_, th, fs := newFS(t)
	if _, err := fs.Readdir(th, "/"); err != nil {
		t.Fatalf("readdir root: %v", err)
	}
}

func TestIsDirErrors(t *testing.T) {
	_, th, fs := newFS(t)
	fs.Mkdir(th, "/d")
	if err := fs.WriteAt(th, "/d", 0, []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Fatalf("write to dir = %v", err)
	}
	if _, err := fs.ReadAt(th, "/d", 0, 1); !errors.Is(err, ErrIsDir) {
		t.Fatalf("read of dir = %v", err)
	}
	fs.Create(th, "/f")
	if _, err := fs.Stat(th, "/f/sub"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("traverse through file = %v", err)
	}
}

func TestMetadataCommitFlushesCoalesced(t *testing.T) {
	// An inode's size and mtime words share one cache line; the journal
	// used to flush each journalled range separately at commit,
	// re-flushing that line on every write syscall. Replay a small
	// workload through pmsan: zero ordering errors, zero redundant
	// flushes.
	rt, th, fs := newFS(t)
	if err := fs.Create(th, "/f"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := fs.WriteAt(th, "/f", int64(i*100), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Mkdir(th, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(th, "/f"); err != nil {
		t.Fatal(err)
	}
	rep, err := pmsan.Run(trace.NewSliceSource(rt.Trace))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors() != 0 {
		t.Fatalf("ordering errors in pmfs trace:\n%s", rep)
	}
	if n := rep.Sites(pmsan.RedundantFlush); n != 0 {
		t.Fatalf("redundant metadata flushes: %d sites\n%s", n, rep)
	}
}
