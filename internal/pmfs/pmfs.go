// Package pmfs implements a PMFS-style persistent-memory filesystem, the
// filesystem access layer of WHISPER (§3.1).
//
// Like the original PMFS (Dulloor et al., EuroSys 2014) it:
//
//   - stores user data in 4 KB blocks and writes it with non-temporal
//     stores followed by an sfence — user data is NOT journaled, and a
//     4 KB block write is one 64-line epoch (the Figure 4 signature);
//   - keeps metadata (inodes, directory entries, allocation bitmap) in PM
//     and protects it with an undo journal: cacheable stores, flushes and
//     fences, with the journal descriptor walked through
//     UNCOMMITTED → COMMITTED → FREE states — the self-dependency source
//     the paper calls out in §5.1;
//   - clears each journal entry in its own epoch (singleton epochs), with
//     Options.BatchClear providing the batched alternative;
//   - persists synchronously: when a call returns, its effects are
//     durable.
//
// Every filesystem call is bracketed by TxBegin/TxEnd so the epoch
// analysis sees system calls as transactions, mirroring how the paper's
// tracing treats PMFS.
package pmfs

import (
	"errors"
	"fmt"
	"strings"

	"github.com/whisper-pm/whisper/internal/mem"
	"github.com/whisper-pm/whisper/internal/persist"
)

// Errors returned by filesystem operations.
var (
	ErrNotFound  = errors.New("pmfs: no such file or directory")
	ErrExists    = errors.New("pmfs: file exists")
	ErrNotDir    = errors.New("pmfs: not a directory")
	ErrIsDir     = errors.New("pmfs: is a directory")
	ErrNoSpace   = errors.New("pmfs: no space left on device")
	ErrNameLong  = errors.New("pmfs: file name too long")
	ErrNotEmpty  = errors.New("pmfs: directory not empty")
	ErrTooLarge  = errors.New("pmfs: file too large")
	ErrBadOffset = errors.New("pmfs: negative offset")
)

// Geometry.
const (
	BlockSize = 4096
	inodeSize = 256

	// Inode layout offsets (all fields uint64).
	offType    = 0
	offSize    = 8
	offNlink   = 16
	offMtime   = 24
	offDirect  = 32 // 16 direct block pointers
	numDirect  = 16
	offIndir   = offDirect + numDirect*8
	ptrsPerBlk = BlockSize / 8

	// MaxFileSize is the largest representable file.
	MaxFileSize = (numDirect + ptrsPerBlk) * BlockSize

	typeFree = uint64(0)
	typeFile = uint64(1)
	typeDir  = uint64(2)

	// Directory entry: 64 bytes = ino u64 + name[56] (NUL padded).
	direntSize = 64
	maxName    = 55

	rootIno = 1
)

// Options tune the filesystem.
type Options struct {
	Inodes     int  // number of inodes (default 4096)
	Blocks     int  // number of 4 KB data blocks (default 16384)
	BatchClear bool // clear journal entries in one epoch at commit
}

func (o Options) withDefaults() Options {
	if o.Inodes == 0 {
		o.Inodes = 4096
	}
	if o.Blocks == 0 {
		o.Blocks = 16384
	}
	return o
}

// FS is a mounted PMFS instance.
type FS struct {
	rt   *persist.Runtime
	opts Options

	inodes mem.Addr // opts.Inodes * inodeSize
	bitmap mem.Addr // opts.Blocks/64 words of block-allocation bits
	data   mem.Addr // opts.Blocks * BlockSize
	jrnl   *journal

	// freeBlocks and freeInodes are volatile allocation hints rebuilt by
	// Recover; the persistent truth is the bitmap and inode types.
	freeBlocks []uint32
	freeInodes []uint32
}

// Format creates and mounts a fresh filesystem with an empty root
// directory. The formatting writes are persisted before Format returns.
func Format(rt *persist.Runtime, th *persist.Thread, opts Options) *FS {
	opts = opts.withDefaults()
	opts.Blocks = (opts.Blocks + 63) &^ 63
	fs := &FS{
		rt:     rt,
		opts:   opts,
		inodes: rt.Dev.Map(opts.Inodes * inodeSize),
		bitmap: rt.Dev.Map(opts.Blocks / 8),
		data:   rt.Dev.Map(opts.Blocks * BlockSize),
		jrnl:   newJournal(rt, opts.BatchClear),
	}
	// Root directory: inode 1, empty, one link.
	root := fs.inodeAddr(rootIno)
	th.StoreU64(root+offType, typeDir)
	th.StoreU64(root+offSize, 0)
	th.StoreU64(root+offNlink, 1)
	th.Flush(root, inodeSize)
	th.Fence()
	fs.rebuildFreeLists(th)
	return fs
}

func (fs *FS) inodeAddr(ino uint32) mem.Addr {
	return fs.inodes + mem.Addr(int(ino)*inodeSize)
}

func (fs *FS) blockAddr(blk uint32) mem.Addr {
	return fs.data + mem.Addr(int(blk)*BlockSize)
}

// rebuildFreeLists scans persistent metadata to rebuild volatile
// allocation hints (mount/recovery path).
func (fs *FS) rebuildFreeLists(th *persist.Thread) {
	fs.freeBlocks = fs.freeBlocks[:0]
	for w := fs.opts.Blocks/64 - 1; w >= 0; w-- {
		v := th.LoadU64(fs.bitmap + mem.Addr(w*8))
		for b := 63; b >= 0; b-- {
			if v&(1<<uint(b)) == 0 {
				fs.freeBlocks = append(fs.freeBlocks, uint32(w*64+b))
			}
		}
	}
	fs.freeInodes = fs.freeInodes[:0]
	for i := fs.opts.Inodes - 1; i >= 2; i-- { // 0 invalid, 1 root
		if th.LoadU64(fs.inodeAddr(uint32(i))+offType) == typeFree {
			fs.freeInodes = append(fs.freeInodes, uint32(i))
		}
	}
}

// Recover replays/aborts the metadata journal after a crash and rebuilds
// the volatile allocation state. Call before using a crashed filesystem.
func (fs *FS) Recover(th *persist.Thread) {
	fs.jrnl.recover(th)
	fs.rebuildFreeLists(th)
}

// allocBlock reserves a data block inside the metadata transaction mt.
func (fs *FS) allocBlock(th *persist.Thread, mt *mdTx) (uint32, error) {
	if len(fs.freeBlocks) == 0 {
		return 0, ErrNoSpace
	}
	blk := fs.freeBlocks[len(fs.freeBlocks)-1]
	fs.freeBlocks = fs.freeBlocks[:len(fs.freeBlocks)-1]
	word := fs.bitmap + mem.Addr(blk/64*8)
	v := th.LoadU64(word)
	mt.writeU64(word, v|1<<uint(blk%64))
	th.VStore(0, 1)
	return blk, nil
}

// freeBlock releases a data block inside mt.
func (fs *FS) freeBlock(th *persist.Thread, mt *mdTx, blk uint32) {
	word := fs.bitmap + mem.Addr(blk/64*8)
	v := th.LoadU64(word)
	mt.writeU64(word, v&^(1<<uint(blk%64)))
	fs.freeBlocks = append(fs.freeBlocks, blk)
	th.VStore(0, 1)
}

// allocInode reserves an inode number inside mt and initializes its type.
func (fs *FS) allocInode(th *persist.Thread, mt *mdTx, typ uint64) (uint32, error) {
	if len(fs.freeInodes) == 0 {
		return 0, ErrNoSpace
	}
	ino := fs.freeInodes[len(fs.freeInodes)-1]
	fs.freeInodes = fs.freeInodes[:len(fs.freeInodes)-1]
	ia := fs.inodeAddr(ino)
	// type, size and nlink are contiguous: one journal entry covers the
	// whole initialization.
	var init [24]byte
	for i := 0; i < 8; i++ {
		init[i] = byte(typ >> (8 * i))
	}
	init[16] = 1 // nlink = 1
	mt.write(ia+offType, init[:])
	th.VStore(0, 1)
	return ino, nil
}

// splitPath returns the parent directory components and the final name.
func splitPath(path string) ([]string, string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, "", ErrExists // the root itself
	}
	parts := strings.Split(path, "/")
	name := parts[len(parts)-1]
	if len(name) > maxName {
		return nil, "", ErrNameLong
	}
	return parts[:len(parts)-1], name, nil
}

// lookupDir walks the directory components and returns the directory's
// inode number.
func (fs *FS) lookupDir(th *persist.Thread, components []string) (uint32, error) {
	ino := uint32(rootIno)
	for _, c := range components {
		next, err := fs.lookupEntry(th, ino, c)
		if err != nil {
			return 0, err
		}
		if th.LoadU64(fs.inodeAddr(next)+offType) != typeDir {
			return 0, ErrNotDir
		}
		ino = next
	}
	return ino, nil
}

// lookupEntry scans the directory blocks of dir for name.
func (fs *FS) lookupEntry(th *persist.Thread, dir uint32, name string) (uint32, error) {
	var found uint32
	err := fs.scanDir(th, dir, func(entry mem.Addr, ino uint32, n string) bool {
		if n == name {
			found = ino
			return false
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if found == 0 {
		return 0, ErrNotFound
	}
	return found, nil
}

// scanDir iterates the live entries of a directory; fn returns false to
// stop.
func (fs *FS) scanDir(th *persist.Thread, dir uint32, fn func(entry mem.Addr, ino uint32, name string) bool) error {
	ia := fs.inodeAddr(dir)
	if th.LoadU64(ia+offType) != typeDir {
		return ErrNotDir
	}
	size := th.LoadU64(ia + offSize)
	for off := uint64(0); off < size; off += direntSize {
		ba, err := fs.blockForRead(th, dir, off)
		if err != nil {
			return err
		}
		entry := ba + mem.Addr(off%BlockSize)
		ino := uint32(th.LoadU64(entry))
		if ino == 0 {
			continue // deleted entry
		}
		raw := th.Load(entry+8, maxName+1)
		name := string(raw[:indexByte(raw, 0)])
		if !fn(entry, ino, name) {
			return nil
		}
	}
	return nil
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return len(b)
}

// blockForRead returns the data-block address holding file offset off.
func (fs *FS) blockForRead(th *persist.Thread, ino uint32, off uint64) (mem.Addr, error) {
	idx := int(off / BlockSize)
	ia := fs.inodeAddr(ino)
	var ptr uint64
	switch {
	case idx < numDirect:
		ptr = th.LoadU64(ia + offDirect + mem.Addr(idx*8))
	case idx < numDirect+ptrsPerBlk:
		ind := th.LoadU64(ia + offIndir)
		if ind == 0 {
			return 0, fmt.Errorf("pmfs: hole at offset %d", off)
		}
		ptr = th.LoadU64(fs.blockAddr(uint32(ind-1)) + mem.Addr((idx-numDirect)*8))
	default:
		return 0, ErrTooLarge
	}
	if ptr == 0 {
		return 0, fmt.Errorf("pmfs: hole at offset %d", off)
	}
	// Block pointers are stored +1 so zero means "absent".
	return fs.blockAddr(uint32(ptr - 1)), nil
}

// blockForWrite returns the data-block address for file offset off,
// allocating the block (and the indirect block) inside mt if needed.
func (fs *FS) blockForWrite(th *persist.Thread, mt *mdTx, ino uint32, off uint64) (mem.Addr, error) {
	idx := int(off / BlockSize)
	ia := fs.inodeAddr(ino)
	var slot mem.Addr
	switch {
	case idx < numDirect:
		slot = ia + offDirect + mem.Addr(idx*8)
	case idx < numDirect+ptrsPerBlk:
		ind := th.LoadU64(ia + offIndir)
		if ind == 0 {
			blk, err := fs.allocBlock(th, mt)
			if err != nil {
				return 0, err
			}
			mt.writeU64(ia+offIndir, uint64(blk)+1)
			ind = uint64(blk) + 1
		}
		slot = fs.blockAddr(uint32(ind-1)) + mem.Addr((idx-numDirect)*8)
	default:
		return 0, ErrTooLarge
	}
	ptr := th.LoadU64(slot)
	if ptr == 0 {
		blk, err := fs.allocBlock(th, mt)
		if err != nil {
			return 0, err
		}
		mt.writeU64(slot, uint64(blk)+1)
		ptr = uint64(blk) + 1
	}
	return fs.blockAddr(uint32(ptr - 1)), nil
}
