package pmfs

import (
	"github.com/whisper-pm/whisper/internal/mem"
	"github.com/whisper-pm/whisper/internal/persist"
)

// journal is the PMFS metadata undo journal. Its descriptor carries the
// UNCOMMITTED → COMMITTED → FREE state machine the paper identifies as a
// self-dependency source (§5.1: "PMFS alters the status in the log
// descriptor from UNCOMMITTED to COMMITTED after a successful commit").
//
// Entries are fixed 64-byte records:
//
//	target addr u64 | length u32 | generation u32 | old data (<= 48 B)
//
// The generation tag makes recovery immune to stale records: only entries
// whose generation matches the descriptor's are trusted, so partially
// cleared logs from earlier transactions can never be replayed. Entries
// are flushed and fenced before the in-place metadata update, fragmenting
// every metadata transaction into alternating epochs exactly as the paper
// describes for undo logging; each entry is cleared in its own epoch at
// commit (singleton epochs) unless batch clearing is enabled.
type journal struct {
	desc    mem.Addr // status u64 | generation u64 | start slot u64
	entries mem.Addr // jrnlMaxEntries * 64 bytes, used as a circular log
	batch   bool
	gen     uint64 // volatile copy of the current generation
	next    int    // next free slot (circular) — long reuse distance, so
	// journal slots do not manufacture self-dependencies the way a
	// fixed-slot log would (real PMFS uses a circular journal too)
}

const (
	jrnlFree        = uint64(0)
	jrnlUncommitted = uint64(1)
	jrnlCommitted   = uint64(2)

	jrnlMaxEntries = 512
	jrnlEntrySize  = 64
	jrnlMaxData    = 48
)

func newJournal(rt *persist.Runtime, batch bool) *journal {
	return &journal{
		desc:    rt.Dev.Map(64),
		entries: rt.Dev.Map(jrnlMaxEntries * jrnlEntrySize),
		batch:   batch,
	}
}

// mdTx is one metadata transaction: a set of journaled in-place updates
// applied under the undo journal.
type mdTx struct {
	j     *journal
	th    *persist.Thread
	start int // first slot of this transaction
	n     int // entries appended
	dirty []mem.Span
}


// begin opens the journal for a metadata transaction: bump the generation
// and mark the descriptor UNCOMMITTED. The descriptor flush shares the
// first entry's fence (entries are invalid without the matching
// generation, so this ordering is safe), saving an epoch per system call.
func (j *journal) begin(th *persist.Thread) *mdTx {
	j.gen++
	th.StoreU64(j.desc, jrnlUncommitted)
	th.StoreU64(j.desc+8, j.gen)
	th.StoreU64(j.desc+16, uint64(j.next))
	th.Flush(j.desc, 24)
	return &mdTx{j: j, th: th, start: j.next}
}

func (j *journal) slotAddr(slot int) mem.Addr {
	return j.entries + mem.Addr((slot%jrnlMaxEntries)*jrnlEntrySize)
}

// write journals the old contents of [a, a+len(data)) and then updates the
// range in place with a cacheable store. The undo entry is fenced before
// the data write (undo ordering); the data flush is deferred to commit.
func (mt *mdTx) write(a mem.Addr, data []byte) {
	if len(data) > jrnlMaxData {
		// Metadata fields are small; chunk defensively.
		mt.write(a, data[:jrnlMaxData])
		mt.write(a+jrnlMaxData, data[jrnlMaxData:])
		return
	}
	if mt.n >= jrnlMaxEntries {
		panic("pmfs: journal overflow")
	}
	th := mt.th
	entry := mt.j.slotAddr(mt.start + mt.n)
	old := th.Load(a, len(data))
	th.StoreU64(entry, uint64(a))
	th.StoreU32(entry+8, uint32(len(data)))
	th.StoreU32(entry+12, uint32(mt.j.gen))
	th.Store(entry+16, old)
	th.Flush(entry, jrnlEntrySize)
	th.Fence()
	mt.n++

	th.Store(a, data)
	mt.dirty = append(mt.dirty, mem.Span{Addr: a, Size: len(data)})
}

// writeU64 journals and updates a single metadata word.
func (mt *mdTx) writeU64(a mem.Addr, v uint64) {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	mt.write(a, buf[:])
}

// commit flushes the in-place metadata updates, marks the journal
// COMMITTED, clears the entries (per entry or batched), and frees the
// descriptor.
func (mt *mdTx) commit() {
	th := mt.th
	// One flush per distinct dirty line. Metadata words cluster: an
	// inode's size and mtime live in the same 64-byte line, so flushing
	// the raw per-write ranges re-flushes clean lines on every commit.
	flushes := mem.Coalesce(mt.dirty)
	for _, s := range flushes {
		th.Flush(s.Addr, s.Size)
	}
	if len(flushes) > 0 {
		th.Fence()
	}
	th.StoreU64(mt.j.desc, jrnlCommitted)
	th.Flush(mt.j.desc, 8)
	th.Fence()
	mt.j.clear(th, mt.start, mt.n)
}

// clear zeroes n journal entries starting at slot start, frees the
// descriptor, and advances the circular position.
func (j *journal) clear(th *persist.Thread, start, n int) {
	if j.batch {
		for i := 0; i < n; i++ { // contiguous flushes, one fence
			e := j.slotAddr(start + i)
			th.StoreU64(e, 0)
			th.StoreU64(e+8, 0)
			th.Flush(e, 16)
		}
		if n > 0 {
			th.Fence()
		}
	} else {
		for i := 0; i < n; i++ {
			e := j.slotAddr(start + i)
			th.StoreU64(e, 0)
			th.StoreU64(e+8, 0)
			th.Flush(e, 16)
			th.Fence()
		}
	}
	th.StoreU64(j.desc, jrnlFree)
	th.Flush(j.desc, 8)
	th.Fence()
	j.next = (start + n) % jrnlMaxEntries
}

// abort undoes the applied updates from the journal (reverse order) and
// frees the descriptor. Used by operations that fail mid-way.
func (mt *mdTx) abort() {
	mt.j.undo(mt.th, mt.j.gen, mt.start)
	mt.j.clear(mt.th, mt.start, mt.n)
}

// undo restores old images for the valid run of entries carrying gen,
// starting at slot start, newest first. Entries are fenced in order during
// the transaction, so a durable entry implies all earlier entries are
// durable: the valid run is exactly the set of updates that may have
// reached metadata.
func (j *journal) undo(th *persist.Thread, gen uint64, start int) {
	n := 0
	for n < jrnlMaxEntries {
		e := j.slotAddr(start + n)
		a := mem.Addr(th.LoadU64(e))
		g := th.LoadU32(e + 12)
		if a == 0 || uint64(g) != gen&0xffffffff {
			break
		}
		n++
	}
	for i := n - 1; i >= 0; i-- {
		e := j.slotAddr(start + i)
		a := mem.Addr(th.LoadU64(e))
		size := int(th.LoadU32(e + 8))
		if size == 0 || size > jrnlMaxData {
			continue
		}
		old := th.Load(e+16, size)
		th.Store(a, old)
		th.Flush(a, size)
		th.Fence()
	}
}

// recover handles the journal after a crash: an UNCOMMITTED journal is
// rolled back; a COMMITTED one only needs its entries discarded. The
// volatile generation resumes past the persisted one.
func (j *journal) recover(th *persist.Thread) {
	status := th.LoadU64(j.desc)
	gen := th.LoadU64(j.desc + 8)
	start := int(th.LoadU64(j.desc+16)) % jrnlMaxEntries
	j.gen = gen
	if status == jrnlUncommitted {
		j.undo(th, gen, start)
	}
	j.clear(th, 0, jrnlMaxEntries)
	j.next = start
}
