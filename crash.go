package whisper

import (
	"time"

	"github.com/whisper-pm/whisper/internal/crashcheck"
)

// CrashMode selects how a crash point is materialized by the checker.
type CrashMode int

const (
	// CrashAllPersisted crashes at an operation boundary with strict
	// device semantics: exactly the explicitly persisted state survives.
	CrashAllPersisted CrashMode = CrashMode(crashcheck.AllPersisted)
	// CrashMidEpoch crashes halfway through an operation's PM event
	// stream with strict device semantics.
	CrashMidEpoch CrashMode = CrashMode(crashcheck.MidEpoch)
	// CrashAdversarialSubset crashes mid-operation and additionally lets
	// the device keep or drop each unpersisted dirty line independently —
	// the legal residual states of a real cache hierarchy.
	CrashAdversarialSubset CrashMode = CrashMode(crashcheck.AdversarialSubset)
)

// String returns the mode's canonical name ("all-persisted", "mid-epoch",
// "adversarial-subset").
func (m CrashMode) String() string { return crashcheck.Mode(m).String() }

// CrashModes returns all checker modes.
func CrashModes() []CrashMode {
	var out []CrashMode
	for _, m := range crashcheck.Modes() {
		out = append(out, CrashMode(m))
	}
	return out
}

// CrashCheckConfig scales a crash-consistency checking run. The zero value
// picks defaults that keep a full ten-app matrix in the seconds range.
type CrashCheckConfig struct {
	Clients int         // client threads (default 2)
	Ops     int         // scripted operations per run (default 16)
	Seeds   []int64     // workload seeds (default 1..8)
	Points  []int       // crash points in [0, Ops) (default 0, 1, Ops/2, Ops-1)
	Modes   []CrashMode // crash modes (default all three)
}

func (c CrashCheckConfig) internal() crashcheck.Config {
	cfg := crashcheck.Config{
		Clients: c.Clients,
		Ops:     c.Ops,
		Seeds:   c.Seeds,
		Points:  c.Points,
	}
	for _, m := range c.Modes {
		cfg.Modes = append(cfg.Modes, crashcheck.Mode(m))
	}
	return cfg
}

// CrashViolation is one failed (seed, point, mode) cell: the recovered
// image broke an application invariant or lost acknowledged work.
type CrashViolation struct {
	App   string
	Mode  CrashMode
	Seed  int64
	Point int
	Err   error
}

func (v CrashViolation) String() string {
	return crashcheck.Violation{
		App: v.App, Mode: crashcheck.Mode(v.Mode),
		Seed: v.Seed, Point: v.Point, Err: v.Err,
	}.String()
}

// CrashReport summarizes the crash matrix for one application.
type CrashReport struct {
	App        string
	Cells      int // (seed, point, mode) cells executed
	Violations []CrashViolation
	Elapsed    time.Duration
}

// Ok reports whether every cell passed.
func (r CrashReport) Ok() bool { return len(r.Violations) == 0 }

func publicResult(res crashcheck.Result) CrashReport {
	out := CrashReport{App: res.App, Cells: res.Cells, Elapsed: res.Elapsed}
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, CrashViolation{
			App: v.App, Mode: CrashMode(v.Mode), Seed: v.Seed, Point: v.Point, Err: v.Err,
		})
	}
	return out
}

// CrashApps returns the names of the applications the checker can drive,
// in suite order.
func CrashApps() []string { return crashcheck.Apps() }

// CrashCheck runs the systematic crash-injection matrix (seeds x crash
// points x modes) for the named suite application: each cell runs the
// scripted workload to its crash point on the simulated device, freezes
// and crashes the durable image, reboots a fresh application instance via
// its recovery path, and validates acknowledged-operation persistence,
// in-flight-operation atomicity, and structural invariants against a
// volatile oracle.
func CrashCheck(app string, cfg CrashCheckConfig) (CrashReport, error) {
	res, err := crashcheck.CheckApp(app, cfg.internal())
	if err != nil {
		return CrashReport{}, err
	}
	return publicResult(res), nil
}

// CrashCheckAll runs the crash matrix for every checkable application and
// returns the reports in suite order.
func CrashCheckAll(cfg CrashCheckConfig) ([]CrashReport, error) {
	results, err := crashcheck.CheckAll(cfg.internal())
	out := make([]CrashReport, 0, len(results))
	for _, res := range results {
		out = append(out, publicResult(res))
	}
	return out, err
}
