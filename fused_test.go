package whisper

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/whisper-pm/whisper/internal/cachesim"
)

// TestFusedMatchesStandalone is the fused-mode contract: for every suite
// member, one fused pass produces an epoch report, sanitizer report, and
// cache statistics byte-identical to the three standalone replays.
func TestFusedMatchesStandalone(t *testing.T) {
	cfg := Config{Ops: 10, Seed: 13}
	for _, b := range Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			serial, err := Run(b.Name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantSan := Sanitize(serial.Trace)
			wantStats := cachesim.ReplayTrace(cachesim.New(cachesim.DefaultConfig()), serial.Trace.tr)
			wantCache := CacheStats{
				L1Hits:     wantStats.L1Hits,
				L2Hits:     wantStats.L2Hits,
				RemoteHits: wantStats.RemoteHits,
				DRAMReads:  wantStats.DRAMReads,
				DRAMWrites: wantStats.DRAMWrites,
				PMReads:    wantStats.PMReads,
				PMWrites:   wantStats.PMWrites,
				NTWrites:   wantStats.NTWrites,
				Evictions:  wantStats.Evictions,
			}
			want := *serial
			want.Trace = nil

			var tee bytes.Buffer
			fused, err := RunStreamFused(b.Name, cfg, FusedConfig{Sanitize: true, Cache: true}, &tee)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*fused.Report, want) {
				t.Errorf("fused epoch report diverged:\n got: %+v\nwant: %+v", *fused.Report, want)
			}
			if got, wantStr := fused.San.String(), wantSan.String(); got != wantStr {
				t.Errorf("fused sanitizer report diverged:\n got: %s\nwant: %s", got, wantStr)
			}
			if *fused.Cache != wantCache {
				t.Errorf("fused cache stats diverged:\n got: %+v\nwant: %+v", *fused.Cache, wantCache)
			}

			// The saved trace analyzes identically through the one-decode
			// fused reader.
			fromDisk, err := AnalyzeReaderFused(bytes.NewReader(tee.Bytes()), FusedConfig{Sanitize: true, Cache: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*fromDisk.Report, want) {
				t.Errorf("fused reader epoch report diverged:\n got: %+v\nwant: %+v", *fromDisk.Report, want)
			}
			if got, wantStr := fromDisk.San.String(), wantSan.String(); got != wantStr {
				t.Errorf("fused reader sanitizer report diverged:\n got: %s\nwant: %s", got, wantStr)
			}
			if *fromDisk.Cache != wantCache {
				t.Errorf("fused reader cache stats diverged:\n got: %+v\nwant: %+v", *fromDisk.Cache, wantCache)
			}
		})
	}
}

// TestFusedNoExtras pins the degenerate configuration: no sanitizer, no
// cache simulation — plain streaming analysis with nil extras.
func TestFusedNoExtras(t *testing.T) {
	cfg := Config{Ops: 5, Seed: 3}
	serial, err := Run("ctree", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := *serial
	want.Trace = nil
	fused, err := RunStreamFused("ctree", cfg, FusedConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fused.San != nil || fused.Cache != nil {
		t.Error("unrequested fused consumers produced reports")
	}
	if !reflect.DeepEqual(*fused.Report, want) {
		t.Errorf("report diverged:\n got: %+v\nwant: %+v", *fused.Report, want)
	}
}

// TestFusedReaderRejectsGarbage pins the error path.
func TestFusedReaderRejectsGarbage(t *testing.T) {
	if _, err := AnalyzeReaderFused(bytes.NewReader([]byte("junk")), FusedConfig{Sanitize: true}); err == nil {
		t.Fatal("AnalyzeReaderFused accepted garbage")
	}
}
