package whisper

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md, "Per-experiment index"). Each benchmark
// prints the rows/series the paper reports via b.ReportMetric and b.Log,
// so `go test -bench=. -benchmem` reproduces the evaluation end to end.
//
// Paper-vs-measured values are recorded in EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"github.com/whisper-pm/whisper/internal/mem"
	"github.com/whisper-pm/whisper/internal/mnemosyne"
	"github.com/whisper-pm/whisper/internal/nvml"
	"github.com/whisper-pm/whisper/internal/persist"
	"github.com/whisper-pm/whisper/internal/pmfs"
	"github.com/whisper-pm/whisper/internal/trace"
)

// benchOps scales runs for benchmarking: big enough to be representative,
// small enough for -bench sweeps.
const benchOps = 100

func runApp(b *testing.B, name string) *Report {
	b.Helper()
	rep, err := Run(name, Config{Ops: benchOps, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkTable1EpochRates regenerates Table 1: epochs per second for
// every application under its workload.
func BenchmarkTable1EpochRates(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = runApp(b, name).EpochsPerSecond
			}
			b.ReportMetric(rate, "epochs/sec")
		})
	}
}

// BenchmarkFig3TransactionSizes regenerates Figure 3: the median number of
// epochs (ordering points) per durable transaction.
func BenchmarkFig3TransactionSizes(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			var med int
			for i := 0; i < b.N; i++ {
				med = runApp(b, name).MedianTxEpochs
			}
			b.ReportMetric(float64(med), "epochs/tx")
		})
	}
}

// BenchmarkFig4EpochSizes regenerates Figure 4: the epoch size
// distribution in 64 B cache lines.
func BenchmarkFig4EpochSizes(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			var rep *Report
			for i := 0; i < b.N; i++ {
				rep = runApp(b, name)
			}
			b.ReportMetric(rep.SingletonFraction*100, "%singleton")
			b.ReportMetric(rep.EpochSizes[6]*100, "%64line")
			b.Logf("%s: %v", name, rep.EpochSizes)
		})
	}
}

// BenchmarkFig5Dependencies regenerates Figure 5: self- and cross-thread
// WAW dependencies within the 50 µs window.
func BenchmarkFig5Dependencies(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			var rep *Report
			for i := 0; i < b.N; i++ {
				rep = runApp(b, name)
			}
			b.ReportMetric(rep.SelfDeps*100, "%self-dep")
			b.ReportMetric(rep.CrossDeps*100, "%cross-dep")
		})
	}
}

// simulatable is the Figure 6/10 subset (§5.3, §6.4).
var simulatable = []string{"echo", "ycsb", "redis", "ctree", "hashmap", "vacation"}

// BenchmarkFig6PMProportion regenerates Figure 6: PM accesses as a share
// of all memory accesses on the simulator-suitable subset.
func BenchmarkFig6PMProportion(b *testing.B) {
	for _, name := range simulatable {
		b.Run(name, func(b *testing.B) {
			var share float64
			for i := 0; i < b.N; i++ {
				share = runApp(b, name).PMShare
			}
			b.ReportMetric(share*100, "%PM")
		})
	}
}

// BenchmarkFig10HOPS regenerates Figure 10: runtime of each application
// under the five persistence models, normalized to the x86-64 NVM
// baseline.
func BenchmarkFig10HOPS(b *testing.B) {
	for _, name := range simulatable {
		b.Run(name, func(b *testing.B) {
			var norm map[string]float64
			for i := 0; i < b.N; i++ {
				rep := runApp(b, name)
				norm = SimulateHOPS(rep.Trace, DefaultHOPSConfig())
			}
			b.ReportMetric(norm["x86-64 (PWQ)"], "x86pwq")
			b.ReportMetric(norm["HOPS (NVM)"], "hops")
			b.ReportMetric(norm["HOPS (PWQ)"], "hopspwq")
			b.ReportMetric(norm["IDEAL (NON-CC)"], "ideal")
		})
	}
}

// BenchmarkAmplification regenerates the §5.2 write-amplification study:
// extra PM bytes per byte of user data, per access layer.
func BenchmarkAmplification(b *testing.B) {
	for _, name := range []string{"ycsb", "vacation", "hashmap", "nfs"} {
		b.Run(name, func(b *testing.B) {
			var amp float64
			for i := 0; i < b.N; i++ {
				amp = runApp(b, name).Amplification
			}
			b.ReportMetric(amp*100, "%amplification")
		})
	}
}

// BenchmarkNTIFraction regenerates the §5.2 "How is PM written?" study:
// the byte share of non-temporal stores (paper: ~96% PMFS, ~67%
// Mnemosyne).
func BenchmarkNTIFraction(b *testing.B) {
	for _, name := range []string{"nfs", "exim", "vacation", "memcached", "hashmap"} {
		b.Run(name, func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				f = runApp(b, name).NTIFraction
			}
			b.ReportMetric(f*100, "%NTI")
		})
	}
}

// --- Ablations (design choices DESIGN.md calls out) ----------------------

// BenchmarkAblationPBSize sweeps the persist-buffer capacity: the paper
// evaluates 32 entries; small PBs force foreground stalls even under HOPS.
func BenchmarkAblationPBSize(b *testing.B) {
	rep, err := Run("hashmap", Config{Ops: benchOps, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, entries := range []int{1, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("pb%d", entries), func(b *testing.B) {
			cfg := DefaultHOPSConfig()
			cfg.PBEntries = entries
			if cfg.DrainAt > entries {
				cfg.DrainAt = entries / 2
			}
			if cfg.DrainAt == 0 {
				cfg.DrainAt = 1
			}
			var hops float64
			for i := 0; i < b.N; i++ {
				hops = SimulateHOPS(rep.Trace, cfg)["HOPS (NVM)"]
			}
			b.ReportMetric(hops, "normalized")
		})
	}
}

// BenchmarkAblationLogClear compares per-entry log clearing (the paper's
// observed behaviour, a singleton-epoch source) with the batched clearing
// §5.1 recommends, for both logging disciplines.
func BenchmarkAblationLogClear(b *testing.B) {
	count := func(batch bool, undo bool) int {
		rt := persist.NewRuntime("ablation", "lib", 1, persist.Config{})
		th := rt.Thread(0)
		if undo {
			pool := nvml.Open(rt, 1024, nvml.Options{BatchClear: batch})
			var a mem.Addr
			pool.Run(th, func(tx *nvml.Tx) error { a = tx.Alloc(128); return nil })
			f0 := rt.Trace.CountKind(trace.KFence)
			pool.Run(th, func(tx *nvml.Tx) error {
				for i := 0; i < 8; i++ {
					tx.SetU64(a+mem.Addr(i*16), uint64(i))
				}
				return nil
			})
			return rt.Trace.CountKind(trace.KFence) - f0
		}
		heap := mnemosyne.New(rt, 1024, mnemosyne.Options{BatchClear: batch})
		a := heap.PMalloc(th, 128)
		f0 := rt.Trace.CountKind(trace.KFence)
		heap.Run(th, func(tx *mnemosyne.Tx) error {
			for i := 0; i < 8; i++ {
				tx.WriteU64(a+mem.Addr(i*16), uint64(i))
			}
			return nil
		})
		return rt.Trace.CountKind(trace.KFence) - f0
	}
	for _, cfg := range []struct {
		name        string
		batch, undo bool
	}{
		{"redo/per-entry", false, false},
		{"redo/batched", true, false},
		{"undo/per-entry", false, true},
		{"undo/batched", true, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var epochs int
			for i := 0; i < b.N; i++ {
				epochs = count(cfg.batch, cfg.undo)
			}
			b.ReportMetric(float64(epochs), "epochs/8-write-tx")
		})
	}
}

// BenchmarkAblationUndoVsRedo isolates §5.1's observation that undo
// logging fragments transactions into more epochs than redo logging.
func BenchmarkAblationUndoVsRedo(b *testing.B) {
	run := func(undo bool) int {
		rt := persist.NewRuntime("ablation", "lib", 1, persist.Config{})
		th := rt.Thread(0)
		f0 := 0
		if undo {
			pool := nvml.Open(rt, 1024, nvml.Options{})
			var a mem.Addr
			pool.Run(th, func(tx *nvml.Tx) error { a = tx.Alloc(256); return nil })
			f0 = rt.Trace.CountKind(trace.KFence)
			pool.Run(th, func(tx *nvml.Tx) error {
				for i := 0; i < 16; i++ {
					tx.SetU64(a+mem.Addr(i*16), uint64(i))
				}
				return nil
			})
		} else {
			heap := mnemosyne.New(rt, 1024, mnemosyne.Options{})
			a := heap.PMalloc(th, 256)
			f0 = rt.Trace.CountKind(trace.KFence)
			heap.Run(th, func(tx *mnemosyne.Tx) error {
				for i := 0; i < 16; i++ {
					tx.WriteU64(a+mem.Addr(i*16), uint64(i))
				}
				return nil
			})
		}
		return rt.Trace.CountKind(trace.KFence) - f0
	}
	b.Run("undo", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = run(true)
		}
		b.ReportMetric(float64(n), "epochs")
	})
	b.Run("redo", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = run(false)
		}
		b.ReportMetric(float64(n), "epochs")
	})
}

// BenchmarkAblationAllocators compares the per-allocation persistent
// metadata cost of the three allocator designs (§5.2).
func BenchmarkAblationAllocators(b *testing.B) {
	b.Run("multislab", func(b *testing.B) {
		rt := persist.NewRuntime("alloc", "lib", 1, persist.Config{})
		heap := mnemosyne.New(rt, 1<<16, mnemosyne.Options{})
		th := rt.Thread(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			heap.PMalloc(th, 48)
		}
		st := rt.Dev.Stats()
		b.ReportMetric(float64(st.Fences)/float64(b.N), "epochs/alloc")
	})
	b.Run("logged", func(b *testing.B) {
		rt := persist.NewRuntime("alloc", "lib", 1, persist.Config{})
		pool := nvml.Open(rt, 1<<16, nvml.Options{})
		th := rt.Thread(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Run(th, func(tx *nvml.Tx) error { tx.Alloc(48); return nil })
		}
		st := rt.Dev.Stats()
		b.ReportMetric(float64(st.Fences)/float64(b.N), "epochs/alloc")
	})
}

// BenchmarkPMFSBlockWrite measures the cost of the 4 KB NTI block write
// path that produces Figure 4's 64-line epochs.
func BenchmarkPMFSBlockWrite(b *testing.B) {
	rt := persist.NewRuntime("pmfs-bench", "pmfs", 1, persist.Config{})
	th := rt.Thread(0)
	fs := pmfs.Format(rt, th, pmfs.Options{Blocks: 1 << 16})
	if err := fs.Create(th, "/bench"); err != nil {
		b.Fatal(err)
	}
	block := make([]byte, pmfs.BlockSize)
	b.SetBytes(pmfs.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteAt(th, "/bench", int64(i%64)*pmfs.BlockSize, block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteRunner measures whole-suite wall clock: all eleven
// applications at benchOps, serial versus the bounded worker pool. The
// parallel rows must produce identical reports (asserted by
// TestParallelSuiteMatchesSerial); only the wall clock may differ.
func BenchmarkSuiteRunner(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunAllParallel(Config{Ops: benchOps, Seed: 1}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceCodec measures encode/decode throughput of the binary
// trace format.
func BenchmarkTraceCodec(b *testing.B) {
	rep, err := Run("hashmap", Config{Ops: benchOps, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink countWriter
			if err := rep.Trace.Encode(&sink); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(sink))
		}
	})
}

type countWriter int

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}
