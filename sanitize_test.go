package whisper

import (
	"bytes"
	"strings"
	"testing"
)

// TestSanitizerCleanAndByteIdentical is the sanitizer's core contract over
// the whole suite: for every benchmark, the serial (retained trace),
// streaming (inline tap), and stored-trace (SanitizeReader over the v2
// tee) paths produce byte-identical reports, and after the ordering fixes
// every app is clean — zero error-class sites and zero diagnostic sites.
func TestSanitizerCleanAndByteIdentical(t *testing.T) {
	cfg := Config{Ops: 10, Seed: 13}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			serial, err := Run(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fromTrace := Sanitize(serial.Trace)

			var tee bytes.Buffer
			_, streamed, err := RunStreamSanitized(name, cfg, &tee)
			if err != nil {
				t.Fatal(err)
			}
			fromDisk, err := SanitizeReader(bytes.NewReader(tee.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			if got, want := streamed.String(), fromTrace.String(); got != want {
				t.Errorf("streaming report diverged from serial:\n got: %s\nwant: %s", got, want)
			}
			if got, want := fromDisk.String(), fromTrace.String(); got != want {
				t.Errorf("stored-trace report diverged from serial:\n got: %s\nwant: %s", got, want)
			}

			if fromTrace.Errors() != 0 {
				t.Errorf("ordering errors in %s:\n%s", name, fromTrace)
			}
			for _, class := range SanClasses() {
				if n := fromTrace.Sites(class); n != 0 {
					t.Errorf("%s: %d %s sites, want 0:\n%s", name, n, class, fromTrace)
				}
			}
		})
	}
}

// TestSanitizerParallelMatchesSerial pins that RunAllParallel's retained
// traces sanitize to the same bytes as the serial path: worker scheduling
// must not leak into reports.
func TestSanitizerParallelMatchesSerial(t *testing.T) {
	cfg := Config{Ops: 8, Seed: 7}
	serial, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAllParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("report counts diverge: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		sr, pr := Sanitize(serial[i].Trace), Sanitize(parallel[i].Trace)
		if sr.String() != pr.String() {
			t.Errorf("%s: parallel sanitizer report diverged:\n got: %s\nwant: %s",
				sr.App(), pr, sr)
		}
	}
}

// TestSanitizeReaderRejectsGarbage pins the error path for corrupt traces.
func TestSanitizeReaderRejectsGarbage(t *testing.T) {
	if _, err := SanitizeReader(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("SanitizeReader accepted garbage")
	}
}

// TestAllowlistAPIRoundTrip exercises the exported allowlist surface:
// parse, apply, and the suppressed accounting.
func TestAllowlistAPIRoundTrip(t *testing.T) {
	rep, err := Run("ycsb", Config{Ops: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	san := Sanitize(rep.Trace)
	// Wildcard-suppress everything; on a clean trace this must be a no-op
	// but the parse/apply path still has to work.
	al, err := ParseAllowlist(strings.NewReader(
		"# suite-wide waiver\n* * \n"))
	if err != nil {
		t.Fatal(err)
	}
	if n := san.ApplyAllowlist(al); n != san.Suppressed() {
		t.Errorf("ApplyAllowlist returned %d, Suppressed() = %d", n, san.Suppressed())
	}
	if san.ApplyAllowlist(nil) != 0 {
		t.Error("nil allowlist suppressed sites")
	}
	if _, err := ParseAllowlist(strings.NewReader("toofew\n")); err == nil {
		t.Error("malformed allowlist rule accepted")
	}
}

// TestSanClassMetadata pins the exported class list and the
// error/diagnostic split the CLI exit code depends on.
func TestSanClassMetadata(t *testing.T) {
	want := []string{
		"dirty-at-commit", "unfenced-flush", "unfenced-nt-store",
		"redundant-flush", "fence-without-work",
	}
	got := SanClasses()
	if len(got) != len(want) {
		t.Fatalf("SanClasses() = %v", got)
	}
	for i, c := range want {
		if got[i] != c {
			t.Fatalf("SanClasses()[%d] = %q, want %q", i, got[i], c)
		}
	}
	for _, c := range want[:3] {
		if !SanClassIsError(c) {
			t.Errorf("%s should be an error class", c)
		}
	}
	for _, c := range want[3:] {
		if SanClassIsError(c) {
			t.Errorf("%s should be a diagnostic class", c)
		}
	}
	if SanClassIsError("bogus") {
		t.Error("unknown class reported as error")
	}
}
