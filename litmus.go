package whisper

import (
	"fmt"

	"github.com/whisper-pm/whisper/internal/pmodel"
)

// Persistency-model litmus checker (pmodel). Where the sanitizer replays
// the one executed interleaving and the crash checker samples crash
// points along it, the litmus checker enumerates — for a small program
// written in the litmus DSL — every durable state its persistency model
// can leave behind a crash, and evaluates a recovery invariant against
// each. The builtin suite pins the classic ordering shapes plus the bug
// shapes earlier crash-sampling PRs caught, now rediscovered
// exhaustively.

// LitmusResult wraps one enumeration: counters, the reachable durable
// set, and the invariant verdict.
type LitmusResult struct {
	res *pmodel.Result
}

// Clean reports whether every reachable durable state satisfies the
// program's invariant.
func (r *LitmusResult) Clean() bool { return r.res.Clean() }

// States returns the number of states the search visited.
func (r *LitmusResult) States() uint64 { return r.res.States }

// DurableStates returns the number of distinct reachable durable states.
func (r *LitmusResult) DurableStates() int { return len(r.res.Durable) }

// Violations returns the number of durable states failing the invariant.
func (r *LitmusResult) Violations() int { return len(r.res.Violations) }

// Report renders the byte-stable litmus report.
func (r *LitmusResult) Report() string { return r.res.Report() }

// CrossValidate replays the program on the simulated device, crash-samples
// it through crashcheck's modes at every operation boundary, and verifies
// each sampled durable image is in the enumerated set. It returns the
// number of sampled images missing from the enumeration (zero is the
// contract) plus the sample count. Only Px86 programs — the device's own
// model — can be cross-validated.
func (r *LitmusResult) CrossValidate(seeds int) (missing, samples int, err error) {
	x, err := pmodel.CrossValidate(r.res.Program, r.res, pmodel.XValConfig{Seeds: seeds})
	if err != nil {
		return 0, 0, err
	}
	return len(x.Missing), x.Samples, nil
}

// LitmusShapes returns the builtin shape names in suite order.
func LitmusShapes() []string {
	var names []string
	for _, s := range pmodel.Suite() {
		names = append(names, s.Name)
	}
	return names
}

// RunLitmusShape checks one builtin shape by name.
func RunLitmusShape(name string) (*LitmusResult, error) {
	s, ok := pmodel.ShapeByName(name)
	if !ok {
		return nil, fmt.Errorf("whisper: unknown litmus shape %q", name)
	}
	return RunLitmusProgram(s.DSL)
}

// RunLitmusProgram parses litmus DSL source and enumerates it.
func RunLitmusProgram(src string) (*LitmusResult, error) {
	p, err := pmodel.Parse(src)
	if err != nil {
		return nil, err
	}
	res, err := pmodel.Check(p, pmodel.CheckConfig{})
	if err != nil {
		return nil, err
	}
	return &LitmusResult{res: res}, nil
}

// LitmusSuiteResult wraps one run of the builtin suite.
type LitmusSuiteResult struct {
	sr *pmodel.SuiteResult
}

// Report renders every shape report plus the summary line, byte-stably.
func (s *LitmusSuiteResult) Report() string { return s.sr.Report() }

// Unexpected returns the number of shapes whose verdict contradicts the
// suite's pinned expectation; zero means the suite is healthy.
func (s *LitmusSuiteResult) Unexpected() int { return s.sr.Unexpected() }

// RunLitmusSuite enumerates every builtin shape.
func RunLitmusSuite() (*LitmusSuiteResult, error) {
	sr, err := pmodel.RunSuite(pmodel.CheckConfig{})
	if err != nil {
		return nil, err
	}
	return &LitmusSuiteResult{sr: sr}, nil
}
