module github.com/whisper-pm/whisper

go 1.22
