package whisper

import (
	"io"

	"github.com/whisper-pm/whisper/internal/scenario"
	"github.com/whisper-pm/whisper/internal/scenario/prims"
)

// Scenario engine (internal/scenario). Where the benchmark suite drives
// each app with its paper-fixed workload, a scenario declares the traffic:
// multi-tenant mixes of apps and the kvservice, zipfian or rotating-
// hotspot skew, phase changes and think-time spikes, and crash storms
// that power-fail every persistence domain under live load — with the
// crashcheck oracles validating each tenant at every recovery point.
// The companion primitives microsuite decomposes app costs into the four
// canonical PM update primitives under identical traffic.

// ScenarioReport wraps one deterministic scenario run.
type ScenarioReport struct {
	res *scenario.Result
}

// Ok reports whether every oracle check at every recovery point passed.
func (r *ScenarioReport) Ok() bool { return r.res.Ok() }

// Ops returns the number of operations driven.
func (r *ScenarioReport) Ops() int { return r.res.Ops }

// CrashCycles returns the number of crash+recovery cycles injected.
func (r *ScenarioReport) CrashCycles() int { return r.res.CrashCycles }

// Violations returns the oracle failures, schedule-ordered.
func (r *ScenarioReport) Violations() []string {
	var out []string
	for _, v := range r.res.Violations {
		out = append(out, v.Tenant+": "+v.Err)
	}
	return out
}

// SanErrors sums unsuppressed durability-sanitizer error sites across the
// run's persistence domains.
func (r *ScenarioReport) SanErrors() int { return r.res.SanErrors() }

// WriteJSON renders the byte-stable report.
func (r *ScenarioReport) WriteJSON(w io.Writer) error { return r.res.WriteJSON(w) }

// ScenarioNames returns the builtin scenario names in suite order.
func ScenarioNames() []string { return scenario.Names() }

// RunScenario runs a builtin scenario at the given seed.
func RunScenario(name string, seed int64) (*ScenarioReport, error) {
	spec, err := scenario.Builtin(name)
	if err != nil {
		return nil, err
	}
	res, err := scenario.Run(spec, scenario.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &ScenarioReport{res: res}, nil
}

// RunScenarioSpec parses a scenario spec in the text format and runs it.
func RunScenarioSpec(src string, seed int64) (*ScenarioReport, error) {
	spec, err := scenario.Parse(src)
	if err != nil {
		return nil, err
	}
	res, err := scenario.Run(spec, scenario.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &ScenarioReport{res: res}, nil
}

// PrimitiveNames returns the PM update-primitive classes in suite order.
func PrimitiveNames() []string { return prims.Names() }

// PrimitiveRow is one primitive's cost decomposition.
type PrimitiveRow = prims.Row

// RunPrimitives benchmarks the four update primitives under identical
// traffic at the given seed and returns the decomposition rows.
func RunPrimitives(seed int64) ([]PrimitiveRow, error) {
	return prims.RunSuite(prims.Config{Seed: seed})
}
