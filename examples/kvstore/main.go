// kvstore builds a crash-consistent persistent key-value store directly on
// the library's NVML-style transactional layer — the way a downstream user
// would build their own PM application on this codebase. It demonstrates
// durable transactions, transactional allocation, abort semantics, and
// recovery after an injected power failure.
package main

import (
	"fmt"
	"log"

	"github.com/whisper-pm/whisper/internal/apps/hashstore"
	"github.com/whisper-pm/whisper/internal/nvml"
	"github.com/whisper-pm/whisper/internal/persist"
	"github.com/whisper-pm/whisper/internal/pmem"
)

func main() {
	// A runtime = simulated PM device + global clock + trace.
	rt := persist.NewRuntime("kvstore-example", "nvml", 1, persist.Config{})
	th := rt.Thread(0)

	// An object pool with undo-log transactions (pmemobj-style).
	pool := nvml.Open(rt, 4096, nvml.Options{})
	kv := hashstore.New(rt, pool, 256)

	// 1. Durable inserts.
	for i := uint64(0); i < 100; i++ {
		if err := kv.Insert(0, i, i*i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted 100 keys; kv[7] = %d\n", mustGet(kv, 7))

	// 2. An aborted transaction leaves no trace.
	err := pool.Run(th, func(tx *nvml.Tx) error {
		tx.Alloc(64) // would leak without rollback
		return fmt.Errorf("application decided to abort")
	})
	fmt.Printf("aborted tx returned: %v\n", err)

	// 3. Power failure! Everything volatile is lost; the undo logs and
	// allocator redo log bring the pool back to a consistent state.
	rt.Crash(pmem.Adversarial, 0xC0FFEE)
	pool.Recover(th)
	kv2 := hashstore.Attach(rt, pool, 256)

	fmt.Printf("after crash+recovery: %d keys persisted\n", kv2.CountPersistent(0))
	fmt.Printf("kv[7] still = %d\n", mustGet(kv2, 7))

	// 4. The trace recorded everything; the device counters show the cost
	// of crash consistency.
	st := rt.Dev.Stats()
	fmt.Printf("device: %d stores, %d flushes, %d fences, %d crash\n",
		st.Stores, st.Flushes, st.Fences, st.Crashes)
}

func mustGet(kv *hashstore.Map, k uint64) uint64 {
	v, ok := kv.Get(0, k)
	if !ok {
		log.Fatalf("key %d lost", k)
	}
	return v
}
