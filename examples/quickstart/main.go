// Quickstart: run one WHISPER benchmark, print its epoch-level analysis,
// and replay it under the Figure 10 persistence models.
package main

import (
	"fmt"
	"log"

	"github.com/whisper-pm/whisper"
)

func main() {
	// Run the NVML hashmap micro-benchmark: 4 clients, 200 INSERT
	// transactions each, deterministic under the given seed.
	rep, err := whisper.Run("hashmap", whisper.Config{Ops: 200, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== epoch analysis (the paper's §5) ===")
	fmt.Print(rep.String())
	fmt.Printf("epochs per transaction (median): %d  (paper: 11)\n", rep.MedianTxEpochs)
	fmt.Printf("singleton epochs:                %.0f%% (paper: ~75%% for library apps)\n",
		rep.SingletonFraction*100)

	fmt.Println("\n=== HOPS evaluation (the paper's §6.4) ===")
	norm := whisper.SimulateHOPS(rep.Trace, whisper.DefaultHOPSConfig())
	for _, model := range whisper.HOPSModels() {
		fmt.Printf("%-16s %.3f\n", model, norm[model])
	}
	fmt.Println("\n(runtimes normalized to the x86-64 NVM baseline; lower is better)")
}
