// analysis sweeps the whole WHISPER suite, prints the paper's headline
// findings next to the measured values, and demonstrates trace
// save/re-analyze through the public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/whisper-pm/whisper"
)

func main() {
	fmt.Println("running the WHISPER suite (scaled down; raise Ops for longer runs)...")
	reports, err := whisper.RunAll(whisper.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Headline (a): "only 4% of writes in PM-aware applications are to PM".
	var pm, total float64
	for _, r := range reports {
		pm += r.PMShare
		total++
	}
	fmt.Printf("\n(a) PM share of memory accesses, suite average: %.1f%% (paper: ~4%%)\n",
		pm/total*100)

	// Headline (b): "software transactions are often implemented with 5 to
	// 50 ordering points".
	in5to50 := 0
	withTx := 0
	for _, r := range reports {
		if r.Transactions == 0 {
			continue
		}
		withTx++
		if r.MedianTxEpochs >= 5 && r.MedianTxEpochs <= 50 {
			in5to50++
		}
	}
	fmt.Printf("(b) apps with median 5..50 epochs/tx: %d of %d (paper: most)\n",
		in5to50, withTx)

	// Headline (c): "75% of epochs update exactly one 64B cache line".
	var singles float64
	for _, r := range reports {
		singles += r.SingletonFraction
	}
	fmt.Printf("(c) singleton epochs, suite average: %.0f%% (paper: 75%%)\n",
		singles/total*100)

	// Headline (d): "80% of epochs from the same thread depend on previous
	// epochs from the same thread, while few epochs depend on epochs from
	// other threads".
	var self, cross float64
	for _, r := range reports {
		self += r.SelfDeps
		cross += r.CrossDeps
	}
	fmt.Printf("(d) self-deps %.0f%% vs cross-deps %.2f%% (paper: high vs ~0)\n\n",
		self/total*100, cross/total*100)

	// Traces round-trip through the binary codec.
	var buf bytes.Buffer
	if err := reports[0].Trace.Encode(&buf); err != nil {
		log.Fatal(err)
	}
	back, err := whisper.DecodeTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	again := whisper.Analyze(back)
	fmt.Printf("trace codec round trip: %s, %d events, %d bytes encoded\n",
		back.App(), back.Events(), buf.Len())
	if again.TotalEpochs != reports[0].TotalEpochs {
		log.Fatal("re-analysis diverged")
	}

	fmt.Println("\nper-application reports:")
	for _, r := range reports {
		fmt.Print(r.String())
	}
}
