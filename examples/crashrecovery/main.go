// crashrecovery stress-tests the PMFS filesystem substrate: it runs a mail
// workload, injects adversarial power failures mid-flight, recovers, and
// verifies that every completed system call survived — the
// crash-recoverability property WHISPER requires of its applications.
package main

import (
	"fmt"
	"log"

	"github.com/whisper-pm/whisper/internal/persist"
	"github.com/whisper-pm/whisper/internal/pmem"
	"github.com/whisper-pm/whisper/internal/pmfs"
)

func main() {
	rt := persist.NewRuntime("crash-example", "pmfs", 1, persist.Config{})
	th := rt.Thread(0)
	fs := pmfs.Format(rt, th, pmfs.Options{Inodes: 512, Blocks: 2048})

	if err := fs.Mkdir(th, "/mail"); err != nil {
		log.Fatal(err)
	}

	survived := 0
	for round := 0; round < 20; round++ {
		path := fmt.Sprintf("/mail/msg%02d", round)
		if err := fs.Create(th, path); err != nil {
			log.Fatalf("round %d: %v", round, err)
		}
		body := []byte(fmt.Sprintf("message %d: persistent memory is fun\n", round))
		if err := fs.WriteAt(th, path, 0, body); err != nil {
			log.Fatalf("round %d: %v", round, err)
		}
		survived++

		// Every few rounds: pull the plug with the adversarial model
		// (random in-flight cache lines persist, others are lost).
		if round%5 == 4 {
			rt.Crash(pmem.Adversarial, int64(round)*7919)
			fs.Recover(th)
			fmt.Printf("crash after %2d messages: recovered, checking...\n", survived)
			verify(rt, fs, survived)
		}
	}
	verify(rt, fs, survived)
	fmt.Printf("all %d completed writes survived %d crashes\n", survived, 4)
}

func verify(rt *persist.Runtime, fs *pmfs.FS, n int) {
	th := rt.Thread(0)
	names, err := fs.Readdir(th, "/mail")
	if err != nil {
		log.Fatal(err)
	}
	if len(names) != n {
		log.Fatalf("directory has %d entries, want %d", len(names), n)
	}
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/mail/msg%02d", i)
		want := fmt.Sprintf("message %d: persistent memory is fun\n", i)
		got, err := fs.ReadAt(th, path, 0, len(want))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if string(got) != want {
			log.Fatalf("%s: content torn: %q", path, got)
		}
	}
}
